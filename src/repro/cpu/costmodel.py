"""Mechanistic batch-latency model of the TensorFlow-Serving CPU baseline.

The paper identifies three cost components in the CPU engine (sections 1,
2.3): (a) per-batch framework overhead — the embedding layer alone invokes
37 operator types many times, which dominates small batches; (b) per-item
random DRAM accesses for the table lookups, limited by the server's memory
channels; (c) the top-MLP GEMM, whose efficiency on AVX2 grows with batch
size.  The model is

  embedding(B) = ops_per_table x num_tables x t_op          (per batch)
               + B x num_lookups x t_lookup                 (per item)
               + c_assembly x sqrt(B)                       (batch assembly)

  end_to_end(B) = embedding(B) + t_launch
                + B x ops_item / (peak_flops x eff(B))
  eff(B) = eff_max x (B + B_floor) / (B + B_half)

Constants are calibrated once against the paper's Table 2/4 CPU columns
(see ``repro.experiments.calibration``); every point of those columns is
then reproduced within ~±25 % and the batch-scaling *shape* — flat small-
batch latency dominated by operator calls, near-linear growth at large
batches — is a model output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cpu.server import CpuServerSpec
from repro.models.spec import ModelSpec


@dataclass(frozen=True)
class CpuCostParams:
    """Calibrated constants of the baseline cost model."""

    #: Operator types invoked in the embedding layer (paper: "37 types of
    #: operators are involved ... e.g. slice and concatenation").
    ops_per_table: int = 37
    #: Per-operator-invocation cost (framework dispatch + small kernels).
    t_op_us: float = 1.49
    #: Per-lookup cost at large batch: one near-random DRAM access plus
    #: per-item operator streamwork, across 8 channels / 16 threads.
    t_lookup_ns: float = 98.0
    #: Batch gather/assembly cost growing sub-linearly with batch.
    c_assembly_us: float = 25.0
    #: One-off session/launch overhead of the MLP computation.
    t_launch_ms: float = 0.5
    #: GEMM efficiency curve: eff(B) = eff_max (B + floor) / (B + half).
    gemm_eff_max: float = 0.50
    gemm_eff_floor: float = 1.5
    gemm_eff_half: float = 160.0

    def gemm_efficiency(self, batch_size: int) -> float:
        return (
            self.gemm_eff_max
            * (batch_size + self.gemm_eff_floor)
            / (batch_size + self.gemm_eff_half)
        )


@dataclass(frozen=True)
class CpuCostModel:
    """Latency/throughput model of one model on one CPU server."""

    model: ModelSpec
    server: CpuServerSpec = field(default_factory=CpuServerSpec)
    params: CpuCostParams = field(default_factory=CpuCostParams)

    def embedding_latency_ms(self, batch_size: int) -> float:
        """Embedding-layer latency for one batch (paper Table 4 CPU rows)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        p = self.params
        per_batch_us = p.ops_per_table * self.model.num_tables * p.t_op_us
        per_item_us = (
            batch_size * self.model.lookups_per_inference * p.t_lookup_ns / 1e3
        )
        assembly_us = p.c_assembly_us * math.sqrt(batch_size)
        return (per_batch_us + per_item_us + assembly_us) / 1e3

    def mlp_latency_ms(self, batch_size: int) -> float:
        """Top-MLP latency for one batch at fp32 on AVX2."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        p = self.params
        eff = p.gemm_efficiency(batch_size)
        flops = batch_size * self.model.ops_per_inference
        compute_ms = flops / (self.server.peak_gflops * 1e9 * eff) * 1e3
        return p.t_launch_ms + compute_ms

    def end_to_end_latency_ms(self, batch_size: int) -> float:
        """Full inference latency for one batch (paper Table 2 CPU rows)."""
        return self.embedding_latency_ms(batch_size) + self.mlp_latency_ms(
            batch_size
        )

    def throughput_items_per_s(self, batch_size: int) -> float:
        return batch_size / (self.end_to_end_latency_ms(batch_size) / 1e3)

    def throughput_gops(self, batch_size: int) -> float:
        return (
            self.throughput_items_per_s(batch_size)
            * self.model.ops_per_inference
            / 1e9
        )

    def embedding_fraction(self, batch_size: int) -> float:
        """Share of inference time spent in the embedding layer (Figure 3)."""
        return self.embedding_latency_ms(batch_size) / self.end_to_end_latency_ms(
            batch_size
        )


def facebook_rmc2_embedding_us_per_item(
    num_tables: int,
    lookups_per_table: int = 4,
    batch_size: int = 256,
    params: CpuCostParams | None = None,
) -> float:
    """Per-item embedding latency of the Facebook DLRM-RMC2 baseline.

    The DeepRecSys baseline (2-socket Broadwell, batch 256) is published
    data we cannot re-measure; applying the same operator-overhead +
    random-access structure as :class:`CpuCostModel`, amortised over the
    batch, lands at ~24 us/item for the RMC2 configurations — consistent
    with the invariant implied by the paper's Table 5, where measured
    speedup x MicroRec latency ~= 24.2 us in all ten cells.

    The embedding-dominated RMC2 models spend nearly all inference time in
    lookups, so the per-item cost is insensitive to the embedding dim —
    operator dispatch, not bytes, dominates (paper section 2.3).
    """
    p = params or CpuCostParams()
    # Each of the 4 lookup rounds re-invokes the embedding operator graph;
    # gather/concat work scales with the lookup count per item.
    per_batch_us = p.ops_per_table * num_tables * lookups_per_table * p.t_op_us
    per_item_us = per_batch_us / batch_size + num_tables * lookups_per_table * (
        p.t_lookup_ns / 1e3
    )
    # TF-Serving per-item overhead observed by the DeepRecSys study: the
    # remaining gap between raw access cost and the published latency.
    per_item_us += 14.0
    return per_item_us
