"""Functional CPU baseline engine.

A plain NumPy implementation of the full inference path — per-table
gathers, feature concatenation, top MLP — mirroring what TensorFlow Serving
executes on the baseline server.  It serves two purposes:

* it is the *correctness reference* the MicroRec engine is tested against
  (same tables, same queries, same MLP => identical CTR predictions); and
* it is a real, wall-clock-benchmarkable embedding layer, so the repository
  has at least one measured (not modelled) baseline datapoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import EmbeddingTable
from repro.cpu.costmodel import CpuCostModel
from repro.models.mlp import Mlp
from repro.models.spec import ModelSpec
from repro.models.workload import QueryBatch


class CpuBaselineEngine:
    """Reference recommendation inference engine (NumPy)."""

    def __init__(
        self,
        model: ModelSpec,
        tables: dict[int, EmbeddingTable],
        mlp: Mlp,
    ):
        missing = [t.table_id for t in model.tables if t.table_id not in tables]
        if missing:
            raise ValueError(f"missing tables for ids {missing}")
        expected_in = model.feature_len
        if mlp.layer_dims[0][0] != expected_in:
            raise ValueError(
                f"MLP input dim {mlp.layer_dims[0][0]} does not match model "
                f"feature length {expected_in}"
            )
        self.model = model
        self.tables = tables
        self.mlp = mlp
        self.cost = CpuCostModel(model)

    def embed(self, batch: QueryBatch) -> np.ndarray:
        """Embedding layer: gather + concatenate, ``(batch, feature_len)``."""
        parts: list[np.ndarray] = []
        if self.model.dense_dim:
            parts.append(batch.dense)
        for t in self.model.tables:
            idx = batch.indices[t.table_id]  # (batch, lookups)
            flat = self.tables[t.table_id].lookup(idx.reshape(-1))
            parts.append(flat.reshape(idx.shape[0], -1))
        return np.concatenate(parts, axis=1)

    def infer(self, batch: QueryBatch) -> np.ndarray:
        """Predicted CTR per query, shape ``(batch,)``."""
        return self.mlp.forward(self.embed(batch))
