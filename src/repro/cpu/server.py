"""CPU server specification for the baseline engine.

The paper's baseline is an AWS instance with an Intel Xeon E5-2686 v4
(16 vCPU = 8 physical cores with AVX2 FMA) and 128 GB of DDR4 over 8
channels, running TensorFlow Serving (section 5.1).  The derived peak
GEMM rate below feeds the mechanistic cost model in
``repro.cpu.costmodel``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuServerSpec:
    """Hardware parameters of the baseline server."""

    name: str = "aws-xeon-e5-2686v4"
    vcpus: int = 16
    physical_cores: int = 8
    clock_ghz: float = 2.3
    memory_channels: int = 8
    #: fp32 lanes per FMA unit (AVX2 = 256-bit = 8 floats).
    simd_lanes: int = 8
    #: FMA units per core on Broadwell.
    fma_units: int = 2
    dram_bytes: int = 128 * 1024**3

    @property
    def peak_gflops(self) -> float:
        """Peak fp32 GFLOP/s: cores x FMA units x lanes x 2 ops x clock.

        8 x 2 x 8 x 2 x 2.3 GHz = 589 GFLOP/s for the default spec.
        """
        return (
            self.physical_cores
            * self.fma_units
            * self.simd_lanes
            * 2
            * self.clock_ghz
        )


#: Facebook's DeepRecSys baseline server (Table 5 comparison): 2-socket
#: Broadwell @ 2.4 GHz, 14 cores/socket, AVX2, 256 GB DDR4.
FACEBOOK_BASELINE = CpuServerSpec(
    name="facebook-broadwell-2s",
    vcpus=56,
    physical_cores=28,
    clock_ghz=2.4,
    memory_channels=8,
    dram_bytes=256 * 1024**3,
)
