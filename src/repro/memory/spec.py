"""Static description of a hybrid memory system.

A :class:`MemorySystemSpec` lists every independently addressable memory
*bank* (an HBM pseudo-channel, a DDR channel, or an on-chip BRAM/URAM
region) together with its capacity.  :func:`u280_memory_system` builds the
Xilinx Alveo U280 configuration the paper evaluates on: 32 HBM channels x
256 MB, 2 DDR4 channels x 16 GB, plus a few MB of on-chip memory.

The planner (``repro.core.planner``) treats HBM simply as additional DRAM
channels, exactly as section 3.4.2 prescribes ("the algorithm simply regards
HBM as additional memory channels"), so the same spec type also describes
HBM-less FPGAs for the generalisation experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.memory.axi import AxiConfig

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class BankKind(enum.Enum):
    """The three classes of memory MicroRec distributes tables over."""

    HBM = "hbm"
    DDR = "ddr"
    ONCHIP = "onchip"  # BRAM/URAM; ~1/3 the access latency of DRAM (sec 3.2.2)

    @property
    def is_dram(self) -> bool:
        return self in (BankKind.HBM, BankKind.DDR)


@dataclass(frozen=True)
class BankSpec:
    """One independently accessible memory bank.

    Banks of different kinds can be accessed concurrently; accesses to the
    *same* bank serialise.  That serialisation is what creates the "rounds
    of DRAM access" the paper's Table 3 counts.
    """

    bank_id: int
    kind: BankKind
    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(
                f"bank {self.bank_id}: capacity must be positive, "
                f"got {self.capacity_bytes}"
            )


@dataclass(frozen=True)
class MemorySystemSpec:
    """A collection of banks plus the AXI interface configuration."""

    banks: Sequence[BankSpec]
    axi: AxiConfig = field(default_factory=AxiConfig)
    name: str = "custom"

    def __post_init__(self) -> None:
        ids = [b.bank_id for b in self.banks]
        if len(set(ids)) != len(ids):
            raise ValueError("bank_id values must be unique")
        if not self.banks:
            raise ValueError("memory system needs at least one bank")

    def banks_of(self, *kinds: BankKind) -> list[BankSpec]:
        return [b for b in self.banks if b.kind in kinds]

    @property
    def dram_banks(self) -> list[BankSpec]:
        return [b for b in self.banks if b.kind.is_dram]

    @property
    def onchip_banks(self) -> list[BankSpec]:
        return self.banks_of(BankKind.ONCHIP)

    @property
    def num_dram_channels(self) -> int:
        return len(self.dram_banks)

    @property
    def dram_capacity_bytes(self) -> int:
        return sum(b.capacity_bytes for b in self.dram_banks)

    @property
    def onchip_capacity_bytes(self) -> int:
        return sum(b.capacity_bytes for b in self.onchip_banks)

    def bank(self, bank_id: int) -> BankSpec:
        for b in self.banks:
            if b.bank_id == bank_id:
                return b
        raise KeyError(f"no bank with id {bank_id}")

    def __iter__(self) -> Iterator[BankSpec]:
        return iter(self.banks)


def u280_memory_system(
    hbm_channels: int = 32,
    hbm_bank_bytes: int = 256 * MIB,
    ddr_channels: int = 2,
    ddr_bank_bytes: int = 16 * GIB,
    onchip_banks: int = 8,
    onchip_bank_bytes: int = 42 * KIB,
    axi: AxiConfig | None = None,
) -> MemorySystemSpec:
    """Build the Alveo U280 memory system used throughout the paper.

    Defaults follow section 5.1: 8 GB HBM2 over 32 pseudo-channels and 32 GB
    DDR4 over 2 channels.  On-chip memory is modelled as a small number of
    independently addressable BRAM regions dedicated to embedding caching
    (heuristic rule 4); the default of 8 x 42 KiB is a deliberately tight
    budget because the U280's on-chip memory is almost entirely consumed by
    GEMM PEs, weight buffers, and the 34 channel FIFOs (appendix, Table 6 —
    78-85 % BRAM utilisation), matching the paper's behaviour of caching
    only a handful of tiny tables on chip.

    Pass ``hbm_channels=0`` to model an HBM-less FPGA — the planner
    generalises unchanged, per section 3.4.2.
    """
    banks: list[BankSpec] = []
    next_id = 0
    for _ in range(hbm_channels):
        banks.append(BankSpec(next_id, BankKind.HBM, hbm_bank_bytes))
        next_id += 1
    for _ in range(ddr_channels):
        banks.append(BankSpec(next_id, BankKind.DDR, ddr_bank_bytes))
        next_id += 1
    for _ in range(onchip_banks):
        banks.append(BankSpec(next_id, BankKind.ONCHIP, onchip_bank_bytes))
        next_id += 1
    return MemorySystemSpec(
        banks=tuple(banks),
        axi=axi if axi is not None else AxiConfig(),
        name="alveo-u280",
    )
