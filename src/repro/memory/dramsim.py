"""Per-access DRAM channel simulation: row buffers, queuing, refresh.

The analytical :class:`~repro.memory.timing.MemoryTimingModel` charges every
random access one fixed initiation plus the AXI burst.  Real controllers
add three effects the paper's measurements include and the closed form does
not (our Table 3 latencies for the large model are ~2x below the paper's —
see EXPERIMENTS.md):

* **row-buffer locality** — an access hitting the currently open row skips
  activation (cheaper); a conflict pays precharge + activation (dearer);
* **command queuing** — consecutive requests to one channel contend for the
  command/data bus even when they target different banks;
* **periodic refresh** — the channel is unavailable a few percent of the
  time.

:class:`DramChannelSim` executes an address trace against an open-page
controller model with per-channel bank state.  It is deliberately compact
(bank-level open-page policy, FR-FCFS-free in-order service) — enough to
quantify how far the idealised model is from a queued one, which is what
the ``queuing ablation`` experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DramTimingParams:
    """Controller timing in nanoseconds (HBM2-class defaults).

    The split of the analytical model's single ``dram_init_ns`` into
    activate/CAS/precharge follows typical HBM2 datasheet ratios, scaled so
    an isolated row-miss access costs about the calibrated 313 ns end to
    end (the Vitis-generated controller adds substantial AXI latency on
    top of raw DRAM timing, modelled in ``controller_overhead_ns``).
    """

    t_rcd_ns: float = 14.0  # activate -> column command
    t_cas_ns: float = 14.0  # column command -> first data
    t_rp_ns: float = 14.0  # precharge
    controller_overhead_ns: float = 271.0  # AXI + controller pipeline
    row_bytes: int = 1024  # open-page granularity
    banks_per_channel: int = 16
    refresh_period_ns: float = 3900.0  # tREFI
    refresh_duration_ns: float = 160.0  # tRFC
    data_ns_per_byte: float = 5.26 / 4  # 32-bit AXI @ 190 MHz
    queue_overhead_ns: float = 8.0  # per-request command-queue cost

    def hit_ns(self, nbytes: int) -> float:
        """Row-buffer hit: CAS + data, no activation."""
        return (
            self.controller_overhead_ns * 0.35
            + self.t_cas_ns
            + nbytes * self.data_ns_per_byte
        )

    def miss_ns(self, nbytes: int) -> float:
        """Closed-row access: activate + CAS + data."""
        return (
            self.controller_overhead_ns
            + self.t_rcd_ns
            + self.t_cas_ns
            + nbytes * self.data_ns_per_byte
        )

    def conflict_ns(self, nbytes: int) -> float:
        """Row conflict: precharge first, then a full miss."""
        return self.t_rp_ns + self.miss_ns(nbytes)


@dataclass
class AccessStats:
    hits: int = 0
    misses: int = 0
    conflicts: int = 0
    refresh_stalls: int = 0
    total_ns: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mean_access_ns(self) -> float:
        return self.total_ns / self.accesses if self.accesses else 0.0


@dataclass
class DramChannelSim:
    """One DRAM channel with open-page banks and in-order service."""

    params: DramTimingParams = field(default_factory=DramTimingParams)

    def __post_init__(self) -> None:
        self._open_rows: dict[int, int] = {}  # bank -> open row
        self._now_ns: float = 0.0
        self._next_refresh_ns: float = self.params.refresh_period_ns
        self.stats = AccessStats()

    def reset(self) -> None:
        self.__post_init__()

    def _bank_and_row(self, byte_addr: int) -> tuple[int, int]:
        row = byte_addr // self.params.row_bytes
        return row % self.params.banks_per_channel, row

    def access(self, byte_addr: int, nbytes: int) -> float:
        """Serve one read; returns its latency and advances channel time."""
        p = self.params
        # Refresh window stalls the whole channel.
        if self._now_ns >= self._next_refresh_ns:
            self._now_ns += p.refresh_duration_ns
            self._next_refresh_ns += p.refresh_period_ns
            self.stats.refresh_stalls += 1
        bank, row = self._bank_and_row(byte_addr)
        open_row = self._open_rows.get(bank)
        if open_row == row:
            latency = p.hit_ns(nbytes)
            self.stats.hits += 1
        elif open_row is None:
            latency = p.miss_ns(nbytes)
            self.stats.misses += 1
        else:
            latency = p.conflict_ns(nbytes)
            self.stats.conflicts += 1
        latency += p.queue_overhead_ns
        self._open_rows[bank] = row
        self._now_ns += latency
        self.stats.total_ns += latency
        return latency

    def run_trace(self, addrs: np.ndarray, nbytes: int) -> float:
        """Serve an in-order address trace; returns the busy time."""
        start = self._now_ns
        for addr in np.asarray(addrs, dtype=np.int64):
            self.access(int(addr), nbytes)
        return self._now_ns - start


def simulate_table_lookups(
    rows: int,
    vector_bytes: int,
    accesses: int,
    rng: np.random.Generator,
    params: DramTimingParams | None = None,
    zipf_alpha: float = 0.0,
) -> AccessStats:
    """Simulate ``accesses`` random lookups into one resident table.

    With uniform indices over a large table nearly every access misses or
    conflicts (the paper's premise: "the resulting DRAM accesses are nearly
    random rather than sequential"); a skewed distribution over a small
    table re-hits open rows.
    """
    from repro.models.distributions import zipf_indices

    sim = DramChannelSim(params or DramTimingParams())
    idx = zipf_indices(rng, rows, accesses, zipf_alpha)
    sim.run_trace(idx * vector_bytes, vector_bytes)
    return sim.stats


