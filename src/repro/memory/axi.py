"""AXI interface model.

MicroRec's appendix ("Memory controller and AXI interface") explains that the
design uses a narrow 32-bit AXI data width per memory channel: the full
512-bit width would consume over half of the U280's BRAM slices for FIFOs
across the 34 DRAM channels and depress the achievable clock frequency.

This module models the stream-side cost of that choice: how many interface
cycles (and nanoseconds) it takes to move an embedding vector of a given
byte-length across the AXI port once the DRAM row is open.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AxiConfig:
    """Width/clock configuration of one AXI memory port.

    Parameters
    ----------
    data_width_bits:
        AXI data bus width. MicroRec uses 32; the ablation benches also
        evaluate the 512-bit alternative the appendix argues against.
    clock_mhz:
        Clock of the memory interface logic. The default is a calibration
        constant (see ``repro.experiments.calibration``): together with the
        DRAM initiation latency it reproduces the per-element slope of the
        paper's Table 5 lookup latencies (~5.3 ns per 32-bit element).
    """

    data_width_bits: int = 32
    clock_mhz: float = 190.0

    def __post_init__(self) -> None:
        if self.data_width_bits <= 0 or self.data_width_bits % 8:
            raise ValueError(
                f"data_width_bits must be a positive multiple of 8, "
                f"got {self.data_width_bits}"
            )
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {self.clock_mhz}")

    @property
    def bytes_per_cycle(self) -> int:
        return self.data_width_bits // 8

    @property
    def cycle_ns(self) -> float:
        return 1e3 / self.clock_mhz

    def cycles_for_bytes(self, nbytes: int) -> int:
        """Interface cycles needed to stream ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return math.ceil(nbytes / self.bytes_per_cycle)

    def stream_ns(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` across the port, row already open."""
        return self.cycles_for_bytes(nbytes) * self.cycle_ns
