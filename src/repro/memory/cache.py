"""Hot-embedding-row caching simulation (RecNMP-style, extension).

Ke et al. (2020) add memory-side caching of frequently accessed embedding
entries; recommendation traffic is heavily Zipf-skewed, so even a small
cache absorbs much of the random-access stream.  This module simulates an
LRU row cache in front of a table and reports hit rates and effective
lookup latency, letting experiments relate traffic skew, cache size, and
the residual benefit of Cartesian merging (merged products dilute per-row
popularity, so caching and merging interact).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LruRowCache:
    """An LRU cache over embedding-row keys."""

    def __init__(self, capacity_rows: int):
        if capacity_rows <= 0:
            raise ValueError(
                f"capacity_rows must be positive, got {capacity_rows}"
            )
        self.capacity = capacity_rows
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.stats = CacheStats()

    def access(self, key: int) -> bool:
        """Touch one row; returns True on hit."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._lru[key] = None
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
        return False

    def run_trace(self, keys: np.ndarray) -> CacheStats:
        for key in np.asarray(keys, dtype=np.int64):
            self.access(int(key))
        return self.stats


def effective_lookup_ns(
    hit_rate: float, hit_ns: float, miss_ns: float
) -> float:
    """Expected per-lookup latency in front of a cache."""
    if not 0 <= hit_rate <= 1:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    return hit_rate * hit_ns + (1.0 - hit_rate) * miss_ns


def zipf_hit_rate(
    rows: int,
    capacity_rows: int,
    alpha: float,
    accesses: int = 50_000,
    seed: int = 0,
) -> float:
    """Simulated LRU hit rate under Zipf(alpha) traffic over one table."""
    from repro.models.distributions import zipf_indices

    rng = np.random.default_rng(seed)
    cache = LruRowCache(capacity_rows)
    keys = zipf_indices(rng, rows, accesses, alpha)
    return cache.run_trace(keys).hit_rate
