"""Hot-embedding-row caching simulation (RecNMP-style, extension).

Ke et al. (2020) add memory-side caching of frequently accessed embedding
entries; recommendation traffic is heavily Zipf-skewed, so even a small
cache absorbs much of the random-access stream.  This module simulates an
LRU row cache in front of a table and reports hit rates and effective
lookup latency, letting experiments relate traffic skew, cache size, and
the residual benefit of Cartesian merging (merged products dilute per-row
popularity, so caching and merging interact).

The bulk path (:func:`lru_hit_flags`, used by
:meth:`LruRowCache.run_trace` and the tier simulator in
:mod:`repro.memory.tiers`) is fully vectorised.  It exploits the classic
stack-distance characterisation of LRU: because this cache inserts on
miss, an access hits iff the number of *distinct* keys touched since the
key's previous occurrence is below the capacity.  That distinct count
reduces to a dominance count over previous-occurrence indices (see
:func:`_count_smaller_before`), computed with a bottom-up merge in
O(n log n) NumPy passes instead of a Python loop per key.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def _count_smaller_before(values: np.ndarray) -> np.ndarray:
    """For each ``i``: ``#{j < i : values[j] < values[i]}``, exactly.

    Bottom-up merge counting: at each level the array is partitioned
    into blocks sorted by value whose slots still correspond to
    contiguous ranges of original positions, so every (j, i) pair is
    counted exactly once — at the level where j's block and i's block
    become siblings — via one biased ``np.searchsorted`` over all block
    pairs at once.  O(n log n) NumPy work, no per-element Python loop.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.size
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    # Pad to a power of two with sentinels larger than every real value:
    # every block is then full, so each level is pure reshaped
    # arithmetic with no ragged-block bookkeeping.  The sentinels sort
    # to the end of their block and contribute only to pad counts,
    # which are sliced off at the end.
    m = 1 << (n - 1).bit_length()
    lo = int(values.min())
    span = int(values.max()) - lo + 2  # +1 head-room for the sentinel
    vals = np.full(m, span - 1, dtype=np.int64)
    vals[:n] = values - lo
    counts = np.zeros(m, dtype=np.int64)
    pos = np.arange(m, dtype=np.int64)  # original index of each slot
    width = 1
    while width < m:
        pair = 2 * width
        n_blocks = m // pair
        # Bias each block by ``block_id * span`` so the concatenated
        # left halves (and right halves) are globally sorted.
        bias = (np.arange(n_blocks, dtype=np.int64) * span)[:, None]
        biased = (vals.reshape(n_blocks, pair) + bias).ravel()
        two = biased.reshape(n_blocks, pair)
        left = np.ascontiguousarray(two[:, :width]).ravel()
        right = np.ascontiguousarray(two[:, width:]).ravel()
        local = np.tile(np.arange(width, dtype=np.int64), n_blocks)
        block_starts = np.repeat(
            np.arange(n_blocks, dtype=np.int64) * width, width
        )
        rank_in_left = (
            np.searchsorted(left, right, side="left") - block_starts
        )
        pos2 = pos.reshape(n_blocks, pair)
        counts[pos2[:, width:].ravel()] += rank_in_left
        # Stable scatter-merge using the two cross-rank arrays: left
        # element k lands at k + (#right <= value), right element k at
        # k + (#left < value) — a consistent tie rule, so the slots
        # form a permutation and each block pair ends up sorted.
        rank_in_right = (
            np.searchsorted(right, left, side="right") - block_starts
        )
        new_slots = np.empty(m, dtype=np.int64)
        pair_base = np.repeat(
            np.arange(n_blocks, dtype=np.int64) * pair, width
        )
        new_slots_2d = new_slots.reshape(n_blocks, pair)
        new_slots_2d[:, :width] = (
            pair_base + local + rank_in_right
        ).reshape(n_blocks, width)
        new_slots_2d[:, width:] = (
            pair_base + local + rank_in_left
        ).reshape(n_blocks, width)
        merged_vals = np.empty(m, dtype=np.int64)
        merged_pos = np.empty(m, dtype=np.int64)
        merged_vals[new_slots] = vals
        merged_pos[new_slots] = pos
        vals = merged_vals
        pos = merged_pos
        width = pair
    return counts[:n]


def lru_hit_flags(keys: np.ndarray, capacity_rows: int) -> np.ndarray:
    """Per-access hit flags for an LRU cache starting empty.

    Exact semantics of replaying ``keys`` through
    :meth:`LruRowCache.access` on a fresh cache, but vectorised: access
    ``i`` hits iff the key occurred before and fewer than
    ``capacity_rows`` distinct keys appeared strictly in between.  The
    distinct count is ``#{j < i : prev[j] < prev[i]} - (prev[i] + 1)``
    — every ``j <= prev[i]`` has ``prev[j] < j <= prev[i]``, so the
    dominance count over *all* earlier accesses over-counts by exactly
    the window start — which :func:`_count_smaller_before` supplies.
    """
    if capacity_rows <= 0:
        raise ValueError(
            f"capacity_rows must be positive, got {capacity_rows}"
        )
    keys = np.asarray(keys, dtype=np.int64).ravel()
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Previous occurrence of each key (stable sort groups equal keys in
    # position order); first occurrences get distinct negative
    # sentinels, which sort below every valid index.
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev = -1 - np.arange(n, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]
    distinct_between = _count_smaller_before(prev) - (prev + 1)
    return (prev >= 0) & (distinct_between < capacity_rows)


class LruRowCache:
    """An LRU cache over embedding-row keys."""

    def __init__(self, capacity_rows: int):
        if capacity_rows <= 0:
            raise ValueError(
                f"capacity_rows must be positive, got {capacity_rows}"
            )
        self.capacity = capacity_rows
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.stats = CacheStats()

    def access(self, key: int) -> bool:
        """Touch one row; returns True on hit."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._lru[key] = None
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
        return False

    def run_trace(self, keys: np.ndarray) -> CacheStats:
        """Replay a whole key trace through the cache, vectorised.

        Matches :meth:`_run_trace_scalar` (a per-key :meth:`access`
        loop) exactly, including on a warm cache: the current contents
        are replayed as a synthetic prefix — one access per resident
        key in LRU order reproduces the cache state — and only the real
        suffix is scored.  The final LRU contents are the last
        ``capacity`` distinct keys ordered by last occurrence, rebuilt
        from the trace without touching the per-key path.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        if keys.size == 0:
            return self.stats
        if self._lru:
            prefix = np.fromiter(
                self._lru, dtype=np.int64, count=len(self._lru)
            )
            full = np.concatenate([prefix, keys])
        else:
            full = keys
        flags = lru_hit_flags(full, self.capacity)[full.size - keys.size:]
        hits = int(np.count_nonzero(flags))
        self.stats.hits += hits
        self.stats.misses += keys.size - hits
        # Final contents: the most recent `capacity` distinct keys, in
        # order of last occurrence (oldest first, like the OrderedDict).
        reversed_trace = full[::-1]
        unique, first_in_reversed = np.unique(
            reversed_trace, return_index=True
        )
        last_pos = full.size - 1 - first_in_reversed
        keep = np.argsort(last_pos)[-self.capacity:]
        self._lru = OrderedDict((int(k), None) for k in unique[keep])
        return self.stats

    def _run_trace_scalar(self, keys: np.ndarray) -> CacheStats:
        """The original per-key Python loop.

        Kept as the reference implementation the parity tests compare
        :meth:`run_trace` against.
        """
        for key in np.asarray(keys, dtype=np.int64):
            self.access(int(key))
        return self.stats


def effective_lookup_ns(
    hit_rate: float, hit_ns: float, miss_ns: float
) -> float:
    """Expected per-lookup latency in front of a cache."""
    if not 0 <= hit_rate <= 1:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    return hit_rate * hit_ns + (1.0 - hit_rate) * miss_ns


def zipf_hit_rate(
    rows: int,
    capacity_rows: int,
    alpha: float,
    accesses: int = 50_000,
    seed: int = 0,
) -> float:
    """Simulated LRU hit rate under Zipf(alpha) traffic over one table."""
    from repro.models.distributions import zipf_indices

    rng = np.random.default_rng(seed)
    cache = LruRowCache(capacity_rows)
    keys = zipf_indices(rng, rows, accesses, alpha)
    return cache.run_trace(keys).hit_rate
