"""Access-latency model for the hybrid memory system.

The model is deliberately simple because the paper's argument only needs two
facts (section 3.3):

* a random DRAM read costs a large fixed initiation time (row activation +
  controller latency, "a couple of hundreds of nanoseconds" on the U280's
  Vitis-generated controllers) followed by a short sequential burst whose
  cost grows with the vector length; and
* an on-chip (BRAM/URAM) read has no initiation cost and completes in about
  a third of the DRAM time.

With a fixed cost that dominates short transfers, merging two tables via a
Cartesian product almost halves lookup latency — that is the behaviour every
downstream experiment exercises.

Calibration: ``dram_init_ns`` and the AXI stream rate are fit to the paper's
own microbenchmark (Table 5, 8-table row: 334.5 ns at dim 4 rising to
648.4 ns at dim 64, i.e. ~313 ns + ~5.3 ns/element).  See
``repro.experiments.calibration`` for the fit and its provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.axi import AxiConfig
from repro.memory.spec import BankKind


@dataclass(frozen=True)
class MemoryTimingModel:
    """Latency model for a single read of ``nbytes`` from one bank.

    Parameters
    ----------
    axi:
        Interface model used for the sequential-burst portion.
    dram_init_ns:
        Fixed initiation cost of a random DRAM (HBM or DDR) access: row
        activation, column access, and controller/AXI handshake.  HBM and
        DDR4 show close access latency on the U280 (section 3.2.2), so one
        constant covers both.
    onchip_latency_fraction:
        On-chip access time as a fraction of the DRAM access time for the
        same payload.  Section 3.2.2: "around 1/3 [the] time of DDR4 or
        HBM".
    """

    axi: AxiConfig = field(default_factory=AxiConfig)
    dram_init_ns: float = 313.0
    onchip_latency_fraction: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.dram_init_ns < 0:
            raise ValueError(f"dram_init_ns must be >= 0, got {self.dram_init_ns}")
        if not 0 < self.onchip_latency_fraction <= 1:
            raise ValueError(
                "onchip_latency_fraction must be in (0, 1], "
                f"got {self.onchip_latency_fraction}"
            )

    def dram_access_ns(self, nbytes: int) -> float:
        """One random DRAM access returning ``nbytes`` of payload."""
        return self.dram_init_ns + self.axi.stream_ns(nbytes)

    def onchip_access_ns(self, nbytes: int) -> float:
        """One on-chip access: control logic + sequential read, no init."""
        return self.dram_access_ns(nbytes) * self.onchip_latency_fraction

    def access_ns(self, kind: BankKind, nbytes: int) -> float:
        if kind.is_dram:
            return self.dram_access_ns(nbytes)
        return self.onchip_access_ns(nbytes)


def default_timing_model(axi: AxiConfig | None = None) -> MemoryTimingModel:
    """The calibrated U280 timing model used by all experiments."""
    return MemoryTimingModel(axi=axi if axi is not None else AxiConfig())
