"""Tiered embedding storage: HBM → DDR → host/SSD with hot-row caching.

The paper keeps the whole embedding working set in on-card memory; at
production scale (ROADMAP: "millions of users") the tables outgrow HBM
and the hot rows must be *cached* there, with DDR and host/SSD behind it.
This module turns the standalone cache study into a first-class layer:

* :class:`TierSpec` / :class:`TierHierarchy` — named capacity+latency
  tiers, fastest first, sourced from :mod:`repro.memory.spec` and
  :mod:`repro.memory.timing` (see :func:`default_tier_hierarchy`), with
  a cascade simulator that replays a key trace through per-tier caches
  and reports where each lookup was served (:class:`TierLookupStats`);
* a string-keyed **cache-policy registry** mirroring the backend /
  router / scaler / strategy registries: ``lru``, ``lfu`` and
  ``admit-on-second-touch`` ship built in, :func:`register_cache_policy`
  adds plug-ins, :func:`get_cache_policy` resolves names and raises
  :class:`UnknownCachePolicyError` with the available names on a typo.

Everything above this layer (``PerfEstimate``, the serving surfaces, the
autoscaler, the bench) consumes :class:`TierHierarchy` through
``ServingSurface.attach_tiers`` — see :mod:`repro.runtime.session`.

Plug-in example::

    class GhostArcPolicy:
        name = "ghost-arc"
        def hits(self, keys, capacity_rows):
            ...
    register_cache_policy(GhostArcPolicy())
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricRegistry

from repro.memory.cache import lru_hit_flags
from repro.memory.spec import (
    GIB,
    BankKind,
    MemorySystemSpec,
    u280_memory_system,
)
from repro.memory.timing import MemoryTimingModel, default_timing_model

#: DDR sits behind 2 channels where HBM has 32 pseudo-channels, so under
#: concurrent lookup traffic a DDR access pays a queueing/serialisation
#: penalty on top of the identical DRAM timing (paper section 3.2 uses
#: both interchangeably for latency, but bandwidth differs 16x).
DDR_CONTENTION_FACTOR = 4.0

#: A host-memory / NVMe fetch over PCIe: DMA descriptor + kernel round
#: trip puts it in the ~10 us class, three orders above an HBM access.
DEFAULT_HOST_ACCESS_NS = 12_000.0

#: Default bytes per embedding row payload (a 32-wide fp32 vector).
DEFAULT_ROW_BYTES = 128


class UnknownCachePolicyError(LookupError):
    """Raised when a cache-policy name is not in the registry."""


@runtime_checkable
class CachePolicy(Protocol):
    """One admission/eviction policy simulated over a key trace.

    ``hits`` replays ``keys`` through a cache of ``capacity_rows`` rows
    that starts empty and returns a boolean hit flag per access.  It
    must be a *pure, deterministic* function of its arguments — the tier
    cascade and the serving path rely on replayability for the
    byte-identical ``--json`` guarantees.
    """

    name: str

    def hits(self, keys: np.ndarray, capacity_rows: int) -> np.ndarray:
        """Per-access hit flags for a cold cache of ``capacity_rows``."""
        ...


class LruPolicy:
    """Least-recently-used with insert-on-miss (the vectorised path)."""

    name = "lru"

    def hits(self, keys: np.ndarray, capacity_rows: int) -> np.ndarray:
        return lru_hit_flags(keys, capacity_rows)


class LfuPolicy:
    """Least-frequently-used, LRU within a frequency class.

    O(1) frequency-bucket implementation: evicts the least recently
    used key of the lowest frequency; an evicted key forgets its count
    (no ghost history).
    """

    name = "lfu"

    def hits(self, keys: np.ndarray, capacity_rows: int) -> np.ndarray:
        if capacity_rows <= 0:
            raise ValueError(
                f"capacity_rows must be positive, got {capacity_rows}"
            )
        keys_list = np.asarray(keys, dtype=np.int64).ravel().tolist()
        out = np.zeros(len(keys_list), dtype=bool)
        freq: dict[int, int] = {}
        buckets: dict[int, OrderedDict[int, None]] = {}
        min_freq = 0
        for i, key in enumerate(keys_list):
            count = freq.get(key)
            if count is not None:
                out[i] = True
                bucket = buckets[count]
                del bucket[key]
                if not bucket:
                    del buckets[count]
                    if min_freq == count:
                        min_freq = count + 1
                freq[key] = count + 1
                buckets.setdefault(count + 1, OrderedDict())[key] = None
                continue
            if len(freq) >= capacity_rows:
                victims = buckets[min_freq]
                victim, _ = victims.popitem(last=False)
                if not victims:
                    del buckets[min_freq]
                del freq[victim]
            freq[key] = 1
            buckets.setdefault(1, OrderedDict())[key] = None
            min_freq = 1
        return out


class AdmitOnSecondTouchPolicy:
    """LRU with a ghost filter: a row is admitted on its second touch.

    One-hit-wonders (the long Zipf tail) never enter the cache: a miss
    records the key in a ghost LRU of recently seen singletons (same
    capacity as the cache) and only a re-touch while still remembered
    admits the row.  Classic scan-resistant admission (TinyLFU-style
    doorkeeper).
    """

    name = "admit-on-second-touch"

    def hits(self, keys: np.ndarray, capacity_rows: int) -> np.ndarray:
        if capacity_rows <= 0:
            raise ValueError(
                f"capacity_rows must be positive, got {capacity_rows}"
            )
        keys_list = np.asarray(keys, dtype=np.int64).ravel().tolist()
        out = np.zeros(len(keys_list), dtype=bool)
        cache: OrderedDict[int, None] = OrderedDict()
        ghost: OrderedDict[int, None] = OrderedDict()
        for i, key in enumerate(keys_list):
            if key in cache:
                out[i] = True
                cache.move_to_end(key)
                continue
            if key in ghost:
                del ghost[key]
                cache[key] = None
                if len(cache) > capacity_rows:
                    cache.popitem(last=False)
            else:
                ghost[key] = None
                if len(ghost) > capacity_rows:
                    ghost.popitem(last=False)
        return out


# ---------------------------------------------------------------------------
# Cache-policy registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, CachePolicy] = {}


def register_cache_policy(
    policy: CachePolicy, *, replace: bool = False
) -> None:
    """Register a cache policy under ``policy.name``.

    Refuses to overwrite an existing name unless ``replace=True``, so
    plug-ins cannot silently shadow the built-ins.
    """
    name = getattr(policy, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"cache policy {policy!r} needs a non-empty string .name"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"cache policy {name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[name] = policy


def get_cache_policy(name: str) -> CachePolicy:
    """Look up a registered cache policy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownCachePolicyError(
            f"unknown cache policy {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def available_cache_policies() -> tuple[str, ...]:
    """Sorted names of every registered cache policy."""
    return tuple(sorted(_REGISTRY))


DEFAULT_CACHE_POLICIES: tuple[CachePolicy, ...] = (
    LruPolicy(),
    LfuPolicy(),
    AdmitOnSecondTouchPolicy(),
)

for _policy in DEFAULT_CACHE_POLICIES:
    register_cache_policy(_policy)


# ---------------------------------------------------------------------------
# Tiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TierSpec:
    """One storage tier: a name, a byte capacity, a per-lookup latency."""

    name: str
    capacity_bytes: int
    access_ns: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tier needs a non-empty name")
        if self.capacity_bytes <= 0:
            raise ValueError(
                f"{self.name}: capacity_bytes must be positive, "
                f"got {self.capacity_bytes}"
            )
        if self.access_ns <= 0:
            raise ValueError(
                f"{self.name}: access_ns must be positive, "
                f"got {self.access_ns}"
            )

    def capacity_rows(self, row_bytes: int) -> int:
        """Whole embedding rows this tier holds (floor division)."""
        if row_bytes <= 0:
            raise ValueError(f"row_bytes must be positive, got {row_bytes}")
        return self.capacity_bytes // row_bytes


@dataclass(frozen=True)
class TierLookupStats:
    """Where a key trace's lookups were served, tier by tier."""

    tiers: tuple[str, ...]
    access_ns: tuple[float, ...]
    served: tuple[int, ...]

    @property
    def accesses(self) -> int:
        return sum(self.served)

    @property
    def hit_rate(self) -> float:
        """Fraction served by the fastest (hot) tier; 0.0 when empty."""
        total = self.accesses
        return self.served[0] / total if total else 0.0

    @property
    def tier_fractions(self) -> tuple[float, ...]:
        total = self.accesses
        if not total:
            return tuple(0.0 for _ in self.served)
        return tuple(count / total for count in self.served)

    @property
    def effective_ns(self) -> float:
        """Hit-rate-weighted blend of the tier latencies; 0.0 when empty."""
        return float(
            sum(
                frac * ns
                for frac, ns in zip(self.tier_fractions, self.access_ns)
            )
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
            "effective_ns": self.effective_ns,
            "tiers": {
                name: {"served": served, "fraction": frac, "access_ns": ns}
                for name, served, frac, ns in zip(
                    self.tiers,
                    self.served,
                    self.tier_fractions,
                    self.access_ns,
                )
            },
        }


@dataclass(frozen=True)
class TierHierarchy:
    """An ordered memory hierarchy with per-tier hot-row caches.

    ``tiers`` runs fastest-first; every tier except the last acts as a
    cache (simulated under ``policy``) and the last is the backstop
    that always serves.  ``warm_accesses`` is the steady-state warm-up
    trace length replayed before measuring a "warm" surface, and
    ``sim_queries`` caps how many queries a serving simulation draws
    per-lookup keys for (the penalty pattern tiles across longer
    streams) so tiering stays affordable at high rates.
    """

    tiers: tuple[TierSpec, ...]
    row_bytes: int = DEFAULT_ROW_BYTES
    policy: str = "lru"
    warm_accesses: int = 8192
    sim_queries: int = 2048

    def __post_init__(self) -> None:
        if len(self.tiers) < 2:
            raise ValueError(
                f"a hierarchy needs at least 2 tiers (a hot cache and a "
                f"backstop), got {len(self.tiers)}"
            )
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        latencies = [t.access_ns for t in self.tiers]
        if any(b <= a for a, b in zip(latencies, latencies[1:])):
            raise ValueError(
                "tier access latencies must be strictly increasing "
                f"fastest-first, got {latencies}"
            )
        if self.row_bytes <= 0:
            raise ValueError(
                f"row_bytes must be positive, got {self.row_bytes}"
            )
        if self.warm_accesses < 0:
            raise ValueError(
                f"warm_accesses must be >= 0, got {self.warm_accesses}"
            )
        if self.sim_queries <= 0:
            raise ValueError(
                f"sim_queries must be positive, got {self.sim_queries}"
            )
        for tier in self.tiers[:-1]:
            if tier.capacity_rows(self.row_bytes) < 1:
                raise ValueError(
                    f"tier {tier.name!r} holds no whole row "
                    f"({tier.capacity_bytes} B at {self.row_bytes} B/row)"
                )
        get_cache_policy(self.policy)  # fail fast on a typo

    @property
    def hot(self) -> TierSpec:
        return self.tiers[0]

    @property
    def backstop(self) -> TierSpec:
        return self.tiers[-1]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    @property
    def tier_access_ns(self) -> tuple[float, ...]:
        return tuple(t.access_ns for t in self.tiers)

    def capacity_rows(self) -> tuple[int, ...]:
        return tuple(t.capacity_rows(self.row_bytes) for t in self.tiers)

    def assign_tiers(self, keys: np.ndarray) -> np.ndarray:
        """Which tier serves each access of ``keys`` (caches cold).

        Cascade: the hot tier's cache sees the full trace; each miss
        stream feeds the next tier's cache; the backstop serves the
        rest.  Returns one tier index per access.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        assigned = np.full(keys.size, len(self.tiers) - 1, dtype=np.int64)
        policy = get_cache_policy(self.policy)
        remaining_keys = keys
        remaining_pos = np.arange(keys.size, dtype=np.int64)
        for index, tier in enumerate(self.tiers[:-1]):
            if remaining_keys.size == 0:
                break
            hit = np.asarray(
                policy.hits(
                    remaining_keys, tier.capacity_rows(self.row_bytes)
                ),
                dtype=bool,
            )
            assigned[remaining_pos[hit]] = index
            remaining_keys = remaining_keys[~hit]
            remaining_pos = remaining_pos[~hit]
        return assigned

    def simulate(
        self,
        keys: np.ndarray,
        *,
        warmup_keys: np.ndarray | None = None,
        metrics: "MetricRegistry | None" = None,
    ) -> TierLookupStats:
        """Tier-by-tier serve counts for ``keys``.

        ``warmup_keys`` are replayed first to pre-warm every cache but
        are excluded from the reported stats — pass a steady-state
        prefix for "warm" numbers, nothing for "cold" numbers.

        ``metrics`` (a :class:`~repro.telemetry.MetricRegistry`)
        additionally feeds per-tier hit/miss counters: each tier's
        serves count as ``tiers.hits.<tier>``, and every lookup the
        hot tier could not answer counts as ``tiers.misses.<hot>``.
        The returned stats are identical with or without it.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        if warmup_keys is not None and np.asarray(warmup_keys).size:
            warmup = np.asarray(warmup_keys, dtype=np.int64).ravel()
            assigned = self.assign_tiers(
                np.concatenate([warmup, keys])
            )[warmup.size:]
        else:
            assigned = self.assign_tiers(keys)
        served = np.bincount(assigned, minlength=len(self.tiers))
        stats = TierLookupStats(
            tiers=self.names,
            access_ns=self.tier_access_ns,
            served=tuple(int(c) for c in served),
        )
        if metrics is not None:
            for name, count in zip(self.names, stats.served):
                metrics.counter(f"tiers.hits.{name}").inc(count)
            metrics.counter(f"tiers.misses.{self.hot.name}").inc(
                stats.accesses - stats.served[0]
            )
        return stats

    def penalty_ns(self, assigned: np.ndarray) -> np.ndarray:
        """Per-access latency added over an all-hot-tier lookup."""
        access = np.asarray(self.tier_access_ns, dtype=np.float64)
        return access[np.asarray(assigned, dtype=np.int64)] - access[0]

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "row_bytes": self.row_bytes,
            "warm_accesses": self.warm_accesses,
            "tiers": [
                {
                    "name": t.name,
                    "capacity_bytes": t.capacity_bytes,
                    "capacity_rows": t.capacity_rows(self.row_bytes),
                    "access_ns": t.access_ns,
                }
                for t in self.tiers
            ],
        }


def default_tier_hierarchy(
    *,
    row_bytes: int = DEFAULT_ROW_BYTES,
    policy: str = "lru",
    memory: MemorySystemSpec | None = None,
    timing: MemoryTimingModel | None = None,
    host_capacity_bytes: int = 1024 * GIB,
    host_access_ns: float = DEFAULT_HOST_ACCESS_NS,
) -> TierHierarchy:
    """The U280 card's real hierarchy: HBM → DDR → host/SSD.

    Capacities come straight from :func:`u280_memory_system` (32 x
    256 MiB HBM, 2 x 16 GiB DDR4); tier latencies from the paper's DRAM
    timing model, with DDR scaled by :data:`DDR_CONTENTION_FACTOR` for
    its 16x narrower channel count and the host tier at PCIe/NVMe
    latency.
    """
    memory = memory if memory is not None else u280_memory_system()
    timing = timing if timing is not None else default_timing_model()
    dram_ns = timing.dram_access_ns(row_bytes)
    hbm_bytes = sum(
        b.capacity_bytes for b in memory.banks_of(BankKind.HBM)
    )
    ddr_bytes = sum(
        b.capacity_bytes for b in memory.banks_of(BankKind.DDR)
    )
    return TierHierarchy(
        tiers=(
            TierSpec("hbm", hbm_bytes, dram_ns),
            TierSpec("ddr", ddr_bytes, dram_ns * DDR_CONTENTION_FACTOR),
            TierSpec("host", host_capacity_bytes, host_access_ns),
        ),
        row_bytes=row_bytes,
        policy=policy,
    )


def scaled_tier_hierarchy(
    working_set_rows: int,
    *,
    row_bytes: int = DEFAULT_ROW_BYTES,
    policy: str = "lru",
    hot_fraction: float = 0.125,
    warm_fraction: float = 0.5,
    timing: MemoryTimingModel | None = None,
    host_access_ns: float = DEFAULT_HOST_ACCESS_NS,
    warm_accesses: int = 8192,
    sim_queries: int = 2048,
) -> TierHierarchy:
    """A hierarchy scaled to a working set that outgrows the hot tier.

    The "millions of users" scenario in miniature: the hot tier holds
    ``hot_fraction`` of the working set, the mid tier ``warm_fraction``,
    and the backstop holds everything.  Latencies keep the real U280
    ratios (see :func:`default_tier_hierarchy`), so hit rates — not
    absolute capacities — carry the behaviour, which keeps simulations
    laptop-sized.
    """
    if working_set_rows <= 0:
        raise ValueError(
            f"working_set_rows must be positive, got {working_set_rows}"
        )
    if not 0 < hot_fraction < warm_fraction:
        raise ValueError(
            "need 0 < hot_fraction < warm_fraction, got "
            f"{hot_fraction} and {warm_fraction}"
        )
    timing = timing if timing is not None else default_timing_model()
    dram_ns = timing.dram_access_ns(row_bytes)
    hot_rows = max(1, int(working_set_rows * hot_fraction))
    warm_rows = max(hot_rows + 1, int(working_set_rows * warm_fraction))
    return TierHierarchy(
        tiers=(
            TierSpec("hbm", hot_rows * row_bytes, dram_ns),
            TierSpec(
                "ddr",
                warm_rows * row_bytes,
                dram_ns * DDR_CONTENTION_FACTOR,
            ),
            TierSpec(
                "host",
                max(working_set_rows, warm_rows + 1) * row_bytes,
                host_access_ns,
            ),
        ),
        row_bytes=row_bytes,
        policy=policy,
        warm_accesses=warm_accesses,
        sim_queries=sim_queries,
    )
