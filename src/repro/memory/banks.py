"""Mutable simulation state for the memory system.

:class:`BankState` tracks what has been placed in a bank, enforces capacity,
and accumulates access statistics; :class:`MemorySystemState` aggregates the
banks of one :class:`~repro.memory.spec.MemorySystemSpec` and answers the
timing questions the lookup simulation asks ("if each resident object is
read once, how long does this bank serialise for, and how many *rounds* of
DRAM access does the busiest channel need?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.spec import BankSpec, MemorySystemSpec
from repro.memory.timing import MemoryTimingModel


@dataclass
class BankState:
    """Occupancy and access statistics of one memory bank."""

    spec: BankSpec
    residents: dict[object, int] = field(default_factory=dict)  # key -> bytes
    reads: int = 0
    bytes_read: int = 0

    @property
    def used_bytes(self) -> int:
        return sum(self.residents.values())

    @property
    def free_bytes(self) -> int:
        return self.spec.capacity_bytes - self.used_bytes

    def can_fit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def place(self, key: object, nbytes: int) -> None:
        """Reserve ``nbytes`` for ``key``; raises if it does not fit."""
        if key in self.residents:
            raise ValueError(f"{key!r} already placed in bank {self.spec.bank_id}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not self.can_fit(nbytes):
            raise ValueError(
                f"bank {self.spec.bank_id} ({self.spec.kind.value}): "
                f"{nbytes} B does not fit in {self.free_bytes} B free"
            )
        self.residents[key] = nbytes

    def evict(self, key: object) -> None:
        try:
            del self.residents[key]
        except KeyError:
            raise KeyError(
                f"{key!r} is not resident in bank {self.spec.bank_id}"
            ) from None

    def record_read(self, nbytes: int) -> None:
        self.reads += 1
        self.bytes_read += nbytes

    def serial_read_ns(self, timing: MemoryTimingModel) -> float:
        """Time to read every resident object once, back to back.

        Reads to the same bank serialise; this is the quantity the planner
        minimises the maximum of across banks.
        """
        return sum(
            timing.access_ns(self.spec.kind, nbytes)
            for nbytes in self.residents.values()
        )


class MemorySystemState:
    """All banks of one memory system, with aggregate queries."""

    def __init__(self, spec: MemorySystemSpec):
        self.spec = spec
        self.banks: dict[int, BankState] = {
            b.bank_id: BankState(b) for b in spec.banks
        }

    def __getitem__(self, bank_id: int) -> BankState:
        return self.banks[bank_id]

    def place(self, bank_id: int, key: object, nbytes: int) -> None:
        self.banks[bank_id].place(key, nbytes)

    @property
    def dram_states(self) -> list[BankState]:
        return [s for s in self.banks.values() if s.spec.kind.is_dram]

    @property
    def onchip_states(self) -> list[BankState]:
        return [s for s in self.banks.values() if not s.spec.kind.is_dram]

    def dram_access_rounds(self) -> int:
        """Max number of resident objects on any single DRAM channel.

        With one vector fetched per resident table per inference, the
        busiest channel issues this many back-to-back random accesses —
        the "DRAM access rounds" of the paper's Table 3.
        """
        counts = [len(s.residents) for s in self.dram_states]
        return max(counts, default=0)

    def parallel_lookup_ns(self, timing: MemoryTimingModel) -> float:
        """Latency for every bank to read each resident object once.

        Banks operate concurrently; the system finishes when the slowest
        bank does.
        """
        return max(
            (s.serial_read_ns(timing) for s in self.banks.values()),
            default=0.0,
        )

    def total_placed_bytes(self) -> int:
        return sum(s.used_bytes for s in self.banks.values())
