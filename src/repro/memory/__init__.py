"""Hybrid memory system substrate.

Models the memory hierarchy of the Xilinx Alveo U280 card used by MicroRec
(MLSys'21, section 3.2): 32 HBM2 pseudo-channels (256 MB each), 2 DDR4
channels (16 GB each), and on-chip BRAM/URAM, all accessed through narrow
32-bit AXI interfaces (paper appendix).

The timing model captures the single property the paper's data-structure
contribution relies on: a random DRAM access pays a large fixed
row-initiation cost followed by a short sequential burst, so fetching one
*merged* (Cartesian-product) vector is far cheaper than fetching its two
halves separately.
"""

from repro.memory.axi import AxiConfig
from repro.memory.spec import (
    BankKind,
    BankSpec,
    MemorySystemSpec,
    u280_memory_system,
)
from repro.memory.timing import MemoryTimingModel, default_timing_model
from repro.memory.banks import BankState, MemorySystemState
from repro.memory.dramsim import (
    AccessStats,
    DramChannelSim,
    DramTimingParams,
    simulate_table_lookups,
)
from repro.memory.tiers import (
    DEFAULT_ROW_BYTES,
    CachePolicy,
    TierHierarchy,
    TierLookupStats,
    TierSpec,
    UnknownCachePolicyError,
    available_cache_policies,
    default_tier_hierarchy,
    get_cache_policy,
    register_cache_policy,
    scaled_tier_hierarchy,
)

__all__ = [
    "AxiConfig",
    "BankKind",
    "BankSpec",
    "MemorySystemSpec",
    "u280_memory_system",
    "MemoryTimingModel",
    "default_timing_model",
    "BankState",
    "MemorySystemState",
    "AccessStats",
    "DramChannelSim",
    "DramTimingParams",
    "simulate_table_lookups",
    "DEFAULT_ROW_BYTES",
    "CachePolicy",
    "TierHierarchy",
    "TierLookupStats",
    "TierSpec",
    "UnknownCachePolicyError",
    "available_cache_policies",
    "default_tier_hierarchy",
    "get_cache_policy",
    "register_cache_policy",
    "scaled_tier_hierarchy",
]
