"""Regression deltas between two benchmark artifacts.

``repro bench --compare old.json`` attaches the output of
:func:`compare_payloads` to the fresh payload: per (model, backend) pair,
the old and new value of each headline metric and the signed percentage
delta.  Positive ``delta_pct`` means the metric *grew* — an improvement
for throughput, a regression for latency and cost; the ``regressions``
helper applies that sign convention, and ``repro bench --compare old.json
--fail-on-regression [PCT]`` exits non-zero on its output so CI can gate
on it directly.

Wall-clock budgets (schema v6) gate differently: raw ``wall_clock_s``
deltas are too noisy to threshold, so a baseline result opts in by
carrying ``wall_clock_budget_s`` — an explicit absolute ceiling — and the
comparison flags every fresh result whose measured wall clock exceeds the
(optionally scaled) ceiling, independent of the percentage threshold.
"""

from __future__ import annotations

from repro.bench.schema import validate_payload

#: Headline metrics compared per (model, backend) pair, with the direction
#: that counts as a regression when the metric grows.
METRICS = {
    "latency_us": "higher-is-worse",
    "serving_latency_ms": "higher-is-worse",
    "throughput_items_per_s": "lower-is-worse",
    "usd_per_million_queries": "higher-is-worse",
}

#: Serving-lab metrics (schema v2) compared when both artifacts carry a
#: ``serving`` block: SLA capacity per arrival process (the highest rate
#: whose judged tail met the SLO) and the SLA-sized fleet's node count.
SERVING_METRICS = {
    "sla_capacity_per_s": "lower-is-worse",
    "sla_nodes": "higher-is-worse",
}

#: Routed-cluster metrics (schema v3) compared when both artifacts carry
#: a non-null ``cluster`` block: blended tail latency, SLA attainment,
#: and the fleet's operating cost per million queries.
CLUSTER_METRICS = {
    "p99_ms": "higher-is-worse",
    "sla_attainment": "lower-is-worse",
    "usd_per_million_queries": "higher-is-worse",
}

#: Elastic-fleet metrics (schema v4) compared when both artifacts carry
#: a non-null ``autoscale`` block: blended fleet size, cost, and the
#: horizon's SLA attainment.
AUTOSCALE_METRICS = {
    "mean_nodes": "higher-is-worse",
    "usd_per_hour": "higher-is-worse",
    "usd_per_million_queries": "higher-is-worse",
    "sla_attainment": "lower-is-worse",
}

#: Sharded-fleet metrics (schema v5) compared when both artifacts carry
#: a non-null ``sharding`` block: blended fan-out tail latency, SLA
#: attainment, the plan's lookup fan-out, and peak node occupancy.
SHARDING_METRICS = {
    "p99_ms": "higher-is-worse",
    "sla_attainment": "lower-is-worse",
    "fanout": "higher-is-worse",
    "max_node_utilisation": "higher-is-worse",
}

#: Tiered-storage metrics (schema v7) compared when both artifacts carry
#: a non-null ``tiering`` block: steady-state hot-tier hit rate and the
#: warm and cold serving tails at the heaviest swept load.
TIERING_METRICS = {
    "hit_rate": "lower-is-worse",
    "warm_p99_ms": "higher-is-worse",
    "cold_p99_ms": "higher-is-worse",
}

#: Telemetry-plane metrics (schema v8) compared when both artifacts
#: carry a non-null ``telemetry`` block: the digest-estimated routed
#: tails, the spill share off the primary tier, and (when the tiering
#: block also ran) the hot tier's counted hit rate.  A drifting digest
#: or a mis-counted dispatch moves these even when the underlying
#: serving numbers hold still.
TELEMETRY_METRICS = {
    "digest_p99_ms": "higher-is-worse",
    "digest_p999_ms": "higher-is-worse",
    "spill_share": "higher-is-worse",
    "hot_hit_rate": "lower-is-worse",
}

#: Every compared metric's regression direction
#: (perf + serving + cluster + autoscale + sharding + tiering +
#: telemetry).
ALL_METRIC_DIRECTIONS = {
    **METRICS,
    **SERVING_METRICS,
    **CLUSTER_METRICS,
    **AUTOSCALE_METRICS,
    **SHARDING_METRICS,
    **TIERING_METRICS,
    **TELEMETRY_METRICS,
}


def _serving_metrics(result: dict) -> dict[str, float]:
    """Flatten a result's serving block into comparable scalars.

    ``sla_capacity_per_s:<process>`` per swept arrival process, plus
    ``sla_nodes`` when the SLA fleet plan exists.  The no-serving guard
    is defensive only: :func:`compare_payloads` validates both payloads
    against the current schema first, so v1 artifacts are rejected
    outright (regenerate them) rather than silently compared on perf
    metrics alone.
    """
    serving = result.get("serving")
    if not isinstance(serving, dict):
        return {}
    out: dict[str, float] = {}
    for process, curve in sorted(serving.get("processes", {}).items()):
        out[f"sla_capacity_per_s:{process}"] = curve["sla_capacity_per_s"]
    fleet_sla = serving.get("fleet_sla")
    if isinstance(fleet_sla, dict):
        out["sla_nodes"] = fleet_sla["nodes"]
    return out


def _direction(metric: str) -> str:
    base = metric.split(":", 1)[0]
    return ALL_METRIC_DIRECTIONS[base]


def _delta(before: float, after: float) -> float | None:
    """Signed percentage change; None when the baseline is zero."""
    if before == 0:
        return 0.0 if after == 0 else None
    return (after - before) / before * 100.0


def _cluster_metrics(payload: dict) -> dict[str, float] | None:
    """Flatten a payload's cluster block into comparable scalars."""
    cluster = payload.get("cluster")
    if not isinstance(cluster, dict):
        return None
    result = cluster["result"]
    return {
        "p99_ms": result["blended"]["p99_ms"],
        "sla_attainment": result["blended"]["sla_attainment"],
        "usd_per_million_queries": result["usd_per_million_queries"],
    }


def _sharding_metrics(payload: dict) -> dict[str, float] | None:
    """Flatten a payload's sharding block into comparable scalars."""
    sharding = payload.get("sharding")
    if not isinstance(sharding, dict):
        return None
    blended = sharding["result"]["blended"]
    plan = sharding["plan"]
    return {
        "p99_ms": blended["p99_ms"],
        "sla_attainment": blended["sla_attainment"],
        "fanout": plan["fanout"],
        "max_node_utilisation": plan["max_node_utilisation"],
    }


def _tiering_metrics(payload: dict) -> dict[str, float] | None:
    """Flatten a payload's tiering block into comparable scalars.

    The warm/cold tails are read at each curve's heaviest measured load —
    the point where cache state matters most — rather than averaged
    across the sweep.
    """
    tiering = payload.get("tiering")
    if not isinstance(tiering, dict):
        return None
    warm = max(tiering["warm"]["points"], key=lambda p: p["rate_per_s"])
    cold = max(tiering["cold"]["points"], key=lambda p: p["rate_per_s"])
    return {
        "hit_rate": tiering["steady_state"]["hit_rate"],
        "warm_p99_ms": warm["p99_ms"],
        "cold_p99_ms": cold["p99_ms"],
    }


def _telemetry_metrics(payload: dict) -> dict[str, float] | None:
    """Flatten a payload's telemetry block into comparable scalars.

    ``hot_hit_rate`` is present only when the block carried tier hit
    rates (the sweep's tiering block was enabled); the comparison then
    diffs the intersection of both sides' metrics, so a one-sided hit
    rate degrades to absent rather than failing.
    """
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict):
        return None
    out = {
        "digest_p99_ms": telemetry["latency_ms"]["p99"],
        "digest_p999_ms": telemetry["latency_ms"]["p999"],
        "spill_share": telemetry["spill_share"],
    }
    hit_rates = telemetry.get("tier_hit_rates")
    if isinstance(hit_rates, dict) and hit_rates:
        # The hierarchy's fastest tier leads the hit-rate map; its rate
        # is the one cache-sizing decisions watch.
        out["hot_hit_rate"] = next(iter(hit_rates.values()))
    return out


def _autoscale_metrics(payload: dict) -> dict[str, float] | None:
    """Flatten a payload's autoscale block into comparable scalars."""
    autoscale = payload.get("autoscale")
    if not isinstance(autoscale, dict):
        return None
    aggregate = autoscale["result"]["aggregate"]
    return {metric: aggregate[metric] for metric in AUTOSCALE_METRICS}


def _block_deltas(
    old: dict[str, float] | None,
    new: dict[str, float] | None,
    metrics: dict[str, str],
) -> dict[str, object] | None:
    """Old/new/delta records for one optional top-level block.

    ``None`` when either payload lacks the block — sweeps legitimately
    disable the cluster/autoscale blocks, and a one-sided block cannot
    be diffed.
    """
    if old is None or new is None:
        return None
    return {
        metric: {
            "old": old[metric],
            "new": new[metric],
            "delta_pct": _delta(old[metric], new[metric]),
        }
        for metric in metrics
    }


def _by_pair(payload: dict) -> dict[tuple[str, str], dict]:
    return {
        (result["model"], result["backend"]): result
        for result in payload["results"]
    }


def _wall_clock_entries(
    old_pairs: dict[tuple[str, str], dict],
    new_pairs: dict[tuple[str, str], dict],
    scale: float,
) -> list[dict[str, object]]:
    """Budget-vs-measured wall-clock records (schema v6).

    One record per shared pair whose *baseline* result carries a
    ``wall_clock_budget_s`` ceiling; the fresh run's measured
    ``wall_clock_s`` is judged against ``scale x budget``.  Budgets are
    opt-in, so unbudgeted pairs simply produce no record.
    """
    entries = []
    for key in sorted(old_pairs.keys() & new_pairs.keys()):
        budget = old_pairs[key].get("wall_clock_budget_s")
        if budget is None:
            continue
        measured = new_pairs[key]["wall_clock_s"]
        entries.append(
            {
                "model": key[0],
                "backend": key[1],
                "wall_clock_s": measured,
                "budget_s": budget * scale,
                "within_budget": measured <= budget * scale,
            }
        )
    return entries


def compare_payloads(
    old: dict, new: dict, *, wall_clock_budget_scale: float = 1.0
) -> dict[str, object]:
    """Diff two validated payloads into a regression-delta record.

    Pairs present in only one payload are listed under ``removed`` /
    ``added`` rather than failing — sweeps legitimately grow backends.
    ``wall_clock_budget_scale`` multiplies every baseline wall-clock
    budget before the fresh run is judged against it (CI runners are
    slower than the laptops budgets were stamped on; the knob loosens the
    whole fleet without editing the artifact).  Raises
    :class:`~repro.bench.schema.BenchSchemaError` if either payload does
    not conform to the schema.
    """
    if wall_clock_budget_scale <= 0:
        raise ValueError(
            f"wall_clock_budget_scale must be positive, got "
            f"{wall_clock_budget_scale}"
        )
    validate_payload(old)
    validate_payload(new)
    old_pairs = _by_pair(old)
    new_pairs = _by_pair(new)
    old_telemetry = _telemetry_metrics(old)
    new_telemetry = _telemetry_metrics(new)
    entries = []
    for key in sorted(old_pairs.keys() & new_pairs.keys()):
        old_perf = old_pairs[key]["perf"]
        new_perf = new_pairs[key]["perf"]
        deltas = {}
        for metric in METRICS:
            before, after = old_perf[metric], new_perf[metric]
            deltas[metric] = {
                "old": before,
                "new": after,
                "delta_pct": _delta(before, after),
            }
        old_serving = _serving_metrics(old_pairs[key])
        new_serving = _serving_metrics(new_pairs[key])
        for metric in sorted(old_serving.keys() | new_serving.keys()):
            before = old_serving.get(metric)
            after = new_serving.get(metric)
            # A metric present on only one side is itself a signal: the
            # SLA fleet plan going null (SLO newly unattainable) must
            # surface as a delta, not vanish from the comparison.
            deltas[metric] = {
                "old": before,
                "new": after,
                "delta_pct": (
                    _delta(before, after)
                    if before is not None and after is not None
                    else None
                ),
            }
        entries.append(
            {"model": key[0], "backend": key[1], "metrics": deltas}
        )
    return {
        "baseline_name": old["name"],
        "entries": entries,
        "cluster": _block_deltas(
            _cluster_metrics(old), _cluster_metrics(new), CLUSTER_METRICS
        ),
        "autoscale": _block_deltas(
            _autoscale_metrics(old),
            _autoscale_metrics(new),
            AUTOSCALE_METRICS,
        ),
        "sharding": _block_deltas(
            _sharding_metrics(old),
            _sharding_metrics(new),
            SHARDING_METRICS,
        ),
        "tiering": _block_deltas(
            _tiering_metrics(old),
            _tiering_metrics(new),
            TIERING_METRICS,
        ),
        "telemetry": _block_deltas(
            old_telemetry,
            new_telemetry,
            {
                metric: direction
                for metric, direction in TELEMETRY_METRICS.items()
                if old_telemetry is None
                or new_telemetry is None
                or (metric in old_telemetry and metric in new_telemetry)
            },
        ),
        "wall_clock": {
            "budget_scale": wall_clock_budget_scale,
            "entries": _wall_clock_entries(
                old_pairs, new_pairs, wall_clock_budget_scale
            ),
        },
        "removed": sorted(
            f"{m}/{b}" for m, b in old_pairs.keys() - new_pairs.keys()
        ),
        "added": sorted(
            f"{m}/{b}" for m, b in new_pairs.keys() - old_pairs.keys()
        ),
    }


def regressions(
    comparison: dict, threshold_pct: float = 5.0
) -> list[str]:
    """Human-readable regression lines worse than ``threshold_pct``.

    Wall-clock budget exceedances are absolute ceilings, not deltas, so
    they are reported regardless of ``threshold_pct``.
    """
    lines = []
    wall_clock = comparison.get("wall_clock") or {}
    for record in wall_clock.get("entries", ()):
        if not record["within_budget"]:
            lines.append(
                f"{record['model']}/{record['backend']}: wall_clock_s "
                f"{record['wall_clock_s']:.3f}s exceeds budget "
                f"{record['budget_s']:.3f}s"
            )
    entries = list(comparison["entries"])
    for block, (model, backend) in {
        "cluster": ("cluster", "routed"),
        "autoscale": ("autoscale", "elastic"),
        "sharding": ("sharding", "fan-out"),
        "tiering": ("tiering", "tiered"),
        "telemetry": ("telemetry", "observed"),
    }.items():
        deltas = comparison.get(block)
        if deltas:
            entries.append(
                {"model": model, "backend": backend, "metrics": deltas}
            )
    for entry in entries:
        for metric, record in entry["metrics"].items():
            direction = _direction(metric)
            before, after = record["old"], record["new"]
            delta = record["delta_pct"]
            if after is None:
                # The metric vanished — for sla_nodes that means the SLO
                # became unattainable at any fleet size: always worse.
                worse, moved = True, "disappeared (SLO no longer attainable?)"
            elif before is None:
                # Appeared: the SLO became attainable — an improvement.
                worse, moved = False, "appeared"
            elif delta is None:
                # Baseline was zero, so no percentage exists; a metric
                # growing off a zero baseline is a regression only when
                # growth is the bad direction.
                worse = direction == "higher-is-worse" and after > 0
                moved = "appeared"
            else:
                worse = delta > threshold_pct if direction == "higher-is-worse" \
                    else delta < -threshold_pct
                moved = f"{'rose' if delta > 0 else 'fell'} {abs(delta):.1f}%"
            if worse:
                old_text = "-" if before is None else f"{before:.6g}"
                new_text = "-" if after is None else f"{after:.6g}"
                lines.append(
                    f"{entry['model']}/{entry['backend']}: {metric} "
                    f"{moved} "
                    f"({old_text} -> {new_text})"
                )
    return lines
