"""Regression deltas between two benchmark artifacts.

``repro bench --compare old.json`` attaches the output of
:func:`compare_payloads` to the fresh payload: per (model, backend) pair,
the old and new value of each headline metric and the signed percentage
delta.  Positive ``delta_pct`` means the metric *grew* — an improvement
for throughput, a regression for latency and cost; the ``regressions``
helper applies that sign convention, and ``repro bench --compare old.json
--fail-on-regression [PCT]`` exits non-zero on its output so CI can gate
on it directly.
"""

from __future__ import annotations

from repro.bench.schema import validate_payload

#: Headline metrics compared per (model, backend) pair, with the direction
#: that counts as a regression when the metric grows.
METRICS = {
    "latency_us": "higher-is-worse",
    "serving_latency_ms": "higher-is-worse",
    "throughput_items_per_s": "lower-is-worse",
    "usd_per_million_queries": "higher-is-worse",
}


def _by_pair(payload: dict) -> dict[tuple[str, str], dict]:
    return {
        (result["model"], result["backend"]): result
        for result in payload["results"]
    }


def compare_payloads(old: dict, new: dict) -> dict[str, object]:
    """Diff two validated payloads into a regression-delta record.

    Pairs present in only one payload are listed under ``removed`` /
    ``added`` rather than failing — sweeps legitimately grow backends.
    Raises :class:`~repro.bench.schema.BenchSchemaError` if either payload
    does not conform to the schema.
    """
    validate_payload(old)
    validate_payload(new)
    old_pairs = _by_pair(old)
    new_pairs = _by_pair(new)
    entries = []
    for key in sorted(old_pairs.keys() & new_pairs.keys()):
        old_perf = old_pairs[key]["perf"]
        new_perf = new_pairs[key]["perf"]
        deltas = {}
        for metric in METRICS:
            before, after = old_perf[metric], new_perf[metric]
            deltas[metric] = {
                "old": before,
                "new": after,
                "delta_pct": (after - before) / before * 100.0,
            }
        entries.append(
            {"model": key[0], "backend": key[1], "metrics": deltas}
        )
    return {
        "baseline_name": old["name"],
        "entries": entries,
        "removed": sorted(
            f"{m}/{b}" for m, b in old_pairs.keys() - new_pairs.keys()
        ),
        "added": sorted(
            f"{m}/{b}" for m, b in new_pairs.keys() - old_pairs.keys()
        ),
    }


def regressions(
    comparison: dict, threshold_pct: float = 5.0
) -> list[str]:
    """Human-readable regression lines worse than ``threshold_pct``."""
    lines = []
    for entry in comparison["entries"]:
        for metric, direction in METRICS.items():
            delta = entry["metrics"][metric]["delta_pct"]
            worse = delta > threshold_pct if direction == "higher-is-worse" \
                else delta < -threshold_pct
            if worse:
                lines.append(
                    f"{entry['model']}/{entry['backend']}: {metric} "
                    f"{'rose' if delta > 0 else 'fell'} {abs(delta):.1f}% "
                    f"({entry['metrics'][metric]['old']:.6g} -> "
                    f"{entry['metrics'][metric]['new']:.6g})"
                )
    return lines
