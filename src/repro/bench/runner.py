"""The benchmark sweep: registered backends x model specs x batch sizes.

This is the machine-readable successor to the ad-hoc ``benchmarks/bench_*``
scripts: one :func:`run_bench` call deploys every requested (model,
backend) pair through :func:`repro.deploy_model`, collects the normalised
:class:`~repro.runtime.perf.PerfEstimate`, the batch-latency curve, the
fleet plan for a target load, the latency-under-load serving block
(schema v2: one curve per arrival process from the serving lab plus the
SLA-aware fleet plan), the planner statistics (planning backends only),
and wall-clock timings, and returns one schema-versioned payload (see
:mod:`repro.bench.schema`).
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import asdict, dataclass
from typing import Callable

from repro.deploy.capacity import plan_fleet_sla
from repro.models.spec import MODEL_FACTORIES
from repro.runtime import available_backends, deploy_model
from repro.serving.arrivals import ARRIVAL_PROCESSES
from repro.serving.lab import session_lab

from repro.bench.schema import SCHEMA_VERSION, SUITE, validate_payload

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: The default fleet-sizing load: the paper's appendix prices engines at
#: web scale, and one million queries per second keeps node counts in a
#: range where the cost ordering is visible.
DEFAULT_TARGET_QPS = 1_000_000.0


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark sweep: what to deploy and where to operate it."""

    models: tuple[str, ...] = ("small",)
    #: Backend names to sweep; empty means every registered backend.
    backends: tuple[str, ...] = ()
    batches: tuple[int, ...] = (1, 64, 512, 2048)
    #: Per-table row cap applied before deployment (keeps the functional
    #: engines laptop-sized; ``None`` deploys the full tables).
    max_rows: int | None = 4096
    seed: int = 0
    quick: bool = False
    target_qps: float = DEFAULT_TARGET_QPS
    #: Latency SLO the serving block is judged against ("tens of
    #: milliseconds", section 1).
    slo_ms: float = 30.0
    #: Simulated window per latency-under-load measurement.
    serve_duration_s: float = 0.1
    #: Arrival processes swept per (model, backend) pair.
    serve_processes: tuple[str, ...] = ("poisson", "diurnal", "bursty")
    #: Offered-load grid as fractions of per-node sustained throughput.
    serve_utilisations: tuple[float, ...] = (0.25, 0.5, 0.8, 1.05)
    #: Tiers of the v3 routed-cluster block, one replica each, on the
    #: first swept model; empty disables the block (``"cluster": null``).
    cluster_backends: tuple[str, ...] = ("fpga", "gpu", "cpu")
    #: Routing policy the cluster block serves under.
    cluster_router: str = "sla-aware"
    #: Offered load of the cluster block as a fraction of the cluster's
    #: summed capacity.
    cluster_utilisation: float = 0.8
    #: Scaler policy of the v4 autoscale block (an elastic fleet of the
    #: first swept model/backend driven through a diurnal trace); the
    #: empty string disables the block (``"autoscale": null``).
    autoscale_policy: str = "reactive-utilisation"
    #: Control windows of the autoscale block's horizon (each one
    #: ``serve_duration_s`` long).
    autoscale_windows: int = 12
    #: Sharding strategy of the v5 sharding block (the first swept model
    #: sharded across ``sharding_nodes`` replicas of the first swept
    #: backend); ``"auto"`` enumerates every registered strategy, the
    #: empty string disables the block (``"sharding": null``).
    sharding_strategy: str = "auto"
    #: Node count of the sharding block's homogeneous cluster.
    sharding_nodes: int = 4
    #: Per-node DRAM cap (GB) of the sharding block — small enough that
    #: the first swept model cannot fit on one node, so the plan is a
    #: real multi-owner shard even for the CI-sized models.
    sharding_node_gb: float = 0.5
    #: Cache policy of the v7 tiering block (the first swept
    #: model/backend bound to a scaled HBM → DDR → host hierarchy and
    #: served warm and cold); the empty string disables the block
    #: (``"tiering": null``).
    tiering_policy: str = "lru"
    #: Zipf exponent of the tiering block's key popularity.
    tiering_alpha: float = 1.05
    #: Fraction of the tiering block's working set the hot tier holds.
    tiering_hot_fraction: float = 0.125
    #: Whether the v8 telemetry block runs (one routed serve observed
    #: through the always-on metric hub: digest tails, dispatch/spill
    #: shares, tier hit rates); ``False`` disables the block
    #: (``"telemetry": null``).
    telemetry: bool = True
    #: When set, stamp every result's ``wall_clock_budget_s`` (schema v6)
    #: at ``multiplier x`` its measured wall clock — the one-command way
    #: to regenerate a budgeted baseline artifact (pick ~3x so routine
    #: noise passes and order-of-magnitude slowdowns fail).  ``None``
    #: leaves results unbudgeted.
    wall_clock_budget_multiplier: float | None = None
    #: Artifact name: the sweep writes ``BENCH_<name>.json``.
    name: str = "full"

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("models must not be empty")
        if len(set(self.models)) != len(self.models):
            raise ValueError(f"duplicate models in {self.models}")
        if len(set(self.backends)) != len(self.backends):
            raise ValueError(f"duplicate backends in {self.backends}")
        if not self.batches:
            raise ValueError("batches must not be empty")
        if any(b <= 0 for b in self.batches):
            raise ValueError(f"batches must be positive, got {self.batches}")
        if len(set(self.batches)) != len(self.batches):
            raise ValueError(f"duplicate batches in {self.batches}")
        if self.max_rows is not None and self.max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {self.max_rows}")
        if self.target_qps <= 0:
            raise ValueError(
                f"target_qps must be positive, got {self.target_qps}"
            )
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.serve_duration_s <= 0:
            raise ValueError(
                f"serve_duration_s must be positive, got "
                f"{self.serve_duration_s}"
            )
        if not self.serve_processes:
            raise ValueError("serve_processes must not be empty")
        if len(set(self.serve_processes)) != len(self.serve_processes):
            raise ValueError(
                f"duplicate serve_processes in {self.serve_processes}"
            )
        unknown = [
            p for p in self.serve_processes if p not in ARRIVAL_PROCESSES
        ]
        if unknown:
            raise ValueError(
                f"unknown serve_processes {unknown}; "
                f"available: {tuple(ARRIVAL_PROCESSES)}"
            )
        if not self.serve_utilisations:
            raise ValueError("serve_utilisations must not be empty")
        if any(u <= 0 for u in self.serve_utilisations):
            raise ValueError(
                f"serve_utilisations must be positive, got "
                f"{self.serve_utilisations}"
            )
        if len(set(self.cluster_backends)) != len(self.cluster_backends):
            raise ValueError(
                f"duplicate cluster_backends in {self.cluster_backends}"
            )
        if self.cluster_utilisation <= 0:
            raise ValueError(
                f"cluster_utilisation must be positive, got "
                f"{self.cluster_utilisation}"
            )
        if self.autoscale_windows <= 0:
            raise ValueError(
                f"autoscale_windows must be positive, got "
                f"{self.autoscale_windows}"
            )
        if self.sharding_nodes <= 0:
            raise ValueError(
                f"sharding_nodes must be positive, got "
                f"{self.sharding_nodes}"
            )
        if self.sharding_node_gb <= 0:
            raise ValueError(
                f"sharding_node_gb must be positive, got "
                f"{self.sharding_node_gb}"
            )
        if self.tiering_alpha < 0:
            raise ValueError(
                f"tiering_alpha must be >= 0, got {self.tiering_alpha}"
            )
        if not 0 < self.tiering_hot_fraction < 0.5:
            raise ValueError(
                f"tiering_hot_fraction must be in (0, 0.5), got "
                f"{self.tiering_hot_fraction}"
            )
        if (
            self.wall_clock_budget_multiplier is not None
            and self.wall_clock_budget_multiplier <= 0
        ):
            raise ValueError(
                f"wall_clock_budget_multiplier must be positive, got "
                f"{self.wall_clock_budget_multiplier}"
            )
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"name must match {_NAME_RE.pattern}, got {self.name!r}"
            )

    @classmethod
    def quick_config(cls, **overrides: object) -> "BenchConfig":
        """The CI-sized sweep: small batches, heavily row-capped tables.

        Completes in well under two minutes across all five built-in
        backends; any field can still be overridden.
        """
        base: dict[str, object] = {
            "models": ("small",),
            "batches": (1, 64, 512),
            "max_rows": 256,
            "quick": True,
            "serve_duration_s": 0.05,
            "name": "quick",
        }
        base.update(overrides)
        return cls(**base)  # type: ignore[arg-type]

    def resolved_backends(self) -> tuple[str, ...]:
        return tuple(self.backends) or available_backends()


def _check_names(config: BenchConfig) -> None:
    from repro.autoscale import available_scalers
    from repro.cluster import available_policies

    unknown_models = [m for m in config.models if m not in MODEL_FACTORIES]
    if unknown_models:
        raise ValueError(
            f"unknown model(s) {unknown_models}; "
            f"available: {sorted(MODEL_FACTORIES)}"
        )
    registered = set(available_backends())
    unknown_backends = [
        b
        for b in (*config.resolved_backends(), *config.cluster_backends)
        if b not in registered
    ]
    if unknown_backends:
        raise ValueError(
            f"unknown backend(s) {unknown_backends}; "
            f"registered: {sorted(registered)}"
        )
    if (
        config.cluster_backends
        and config.cluster_router not in available_policies()
    ):
        raise ValueError(
            f"unknown cluster_router {config.cluster_router!r}; "
            f"registered: {sorted(available_policies())}"
        )
    if (
        config.autoscale_policy
        and config.autoscale_policy not in available_scalers()
    ):
        raise ValueError(
            f"unknown autoscale_policy {config.autoscale_policy!r}; "
            f"registered: {sorted(available_scalers())}"
        )
    from repro.distplan import AUTO_STRATEGY, available_strategies

    if (
        config.sharding_strategy
        and config.sharding_strategy != AUTO_STRATEGY
        and config.sharding_strategy not in available_strategies()
    ):
        raise ValueError(
            f"unknown sharding_strategy {config.sharding_strategy!r}; "
            f"registered: {sorted(available_strategies())} "
            f"(or {AUTO_STRATEGY!r})"
        )
    from repro.memory.tiers import available_cache_policies

    if (
        config.tiering_policy
        and config.tiering_policy not in available_cache_policies()
    ):
        raise ValueError(
            f"unknown tiering_policy {config.tiering_policy!r}; "
            f"registered: {sorted(available_cache_policies())}"
        )


def _bench_cluster(config: BenchConfig) -> dict[str, object] | None:
    """The v3 routed-cluster block: one heterogeneous serve per sweep.

    One replica per configured tier, first swept model, served at a
    fixed fraction of the cluster's summed capacity under the configured
    router — enough for ``--compare`` to track blended tail latency and
    $/M-queries of the routed fleet across commits.
    """
    if not config.cluster_backends:
        return None
    from repro.cluster import ReplicaSpec, deploy_cluster
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.lab import lab_seed

    import numpy as np

    model_name = config.models[0]
    cluster = deploy_cluster(
        [
            ReplicaSpec(model=model_name, backend=backend)
            for backend in config.cluster_backends
        ],
        router=config.cluster_router,
        slo_ms=config.slo_ms,
        max_rows=config.max_rows,
        seed=config.seed,
    )
    rate = (
        config.cluster_utilisation
        * cluster.perf().throughput_items_per_s
    )
    rng = np.random.default_rng(
        lab_seed(config.seed, cluster.backend, "bench-cluster")
    )
    arrivals = poisson_arrivals(rng, rate, config.serve_duration_s)
    result = cluster.serve(arrivals)
    return {
        "model": model_name,
        "tiers": list(config.cluster_backends),
        "router": config.cluster_router,
        "rate_per_s": rate,
        "utilisation": config.cluster_utilisation,
        "duration_s": config.serve_duration_s,
        "slo_ms": config.slo_ms,
        "result": result.as_dict(config.slo_ms),
    }


def _bench_autoscale(config: BenchConfig) -> dict[str, object] | None:
    """The v4 elastic-fleet block: one autoscaled trace replay per sweep.

    The first swept model on the first swept backend, driven through a
    diurnal trace (base rate: eight nodes' worth of capacity, the range
    where fleet sizes stay legible) by the configured scaler policy —
    enough for ``--compare`` to track blended elastic cost and SLA
    attainment (and the savings against the peak-sized static fleet)
    across commits.
    """
    if not config.autoscale_policy:
        return None
    from repro.autoscale import simulate_autoscale
    from repro.serving.arrivals import diurnal_trace

    model_name = config.models[0]
    backend = config.resolved_backends()[0]
    session = deploy_model(
        model_name,
        backend=backend,
        max_rows=config.max_rows,
        seed=config.seed,
    )
    per_node = session.perf().throughput_items_per_s
    trace = diurnal_trace(
        8.0 * per_node,
        config.autoscale_windows * config.serve_duration_s,
        amplitude=0.6,
    )
    result = simulate_autoscale(
        session,
        trace,
        policy=config.autoscale_policy,
        slo_ms=config.slo_ms,
        windows=config.autoscale_windows,
        seed=config.seed,
    )
    return {
        "model": model_name,
        "backend": backend,
        "policy": config.autoscale_policy,
        "windows": config.autoscale_windows,
        "slo_ms": config.slo_ms,
        "result": result.as_dict(),
    }


def _bench_sharding(config: BenchConfig) -> dict[str, object] | None:
    """The v5 sharded-fleet block: one fan-out serve per sweep.

    The first swept model sharded across ``sharding_nodes`` replicas of
    the first swept backend, each capped at ``sharding_node_gb`` of DRAM
    so even the CI-sized models cannot fit on one node and the planner
    must emit a real multi-owner plan.  Served at a fixed fraction of
    the fan-out capacity — enough for ``--compare`` to track blended
    tail latency, fan-out, and peak node occupancy across commits.
    """
    if not config.sharding_strategy:
        return None
    from repro.cluster import ReplicaSpec
    from repro.distplan import AUTO_STRATEGY, deploy_sharded
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.lab import lab_seed

    import numpy as np

    model_name = config.models[0]
    backend = config.resolved_backends()[0]
    strategy = (
        None
        if config.sharding_strategy == AUTO_STRATEGY
        else config.sharding_strategy
    )
    cluster = deploy_sharded(
        model_name,
        [ReplicaSpec(backend=backend, count=config.sharding_nodes)],
        strategy,
        slo_ms=config.slo_ms,
        max_rows=config.max_rows,
        seed=config.seed,
        node_capacity_bytes=int(config.sharding_node_gb * 1024**3),
    )
    rate = (
        config.cluster_utilisation
        * cluster.perf().throughput_items_per_s
    )
    rng = np.random.default_rng(
        lab_seed(config.seed, cluster.backend, "bench-sharding")
    )
    arrivals = poisson_arrivals(rng, rate, config.serve_duration_s)
    result = cluster.serve(arrivals)
    return {
        "model": model_name,
        "tiers": [f"{backend}:{config.sharding_nodes}"],
        "strategy": cluster.plan.strategy,
        "nodes": config.sharding_nodes,
        "node_gb": config.sharding_node_gb,
        "rate_per_s": rate,
        "utilisation": config.cluster_utilisation,
        "duration_s": config.serve_duration_s,
        "slo_ms": config.slo_ms,
        "plan": cluster.plan.as_dict(),
        "result": result.as_dict(config.slo_ms),
    }


def _bench_tiering(config: BenchConfig) -> dict[str, object] | None:
    """The v7 tiered-storage block: one warm/cold tier lab per sweep.

    The first swept model on the first swept backend, bound to a scaled
    HBM → DDR → host hierarchy whose hot tier holds only
    ``tiering_hot_fraction`` of the model's rows, driven by
    Zipf(``tiering_alpha``) popularity — enough for ``--compare`` to
    track the steady-state hit rate and the warm and cold p99 across
    commits.  Simulation sizes are capped (``sim_queries``) so the
    block stays CI-priced.
    """
    if not config.tiering_policy:
        return None
    from repro.memory.tiers import scaled_tier_hierarchy
    from repro.serving.lab import tiering_lab
    from repro.serving.popularity import PopularityModel

    model_name = config.models[0]
    backend = config.resolved_backends()[0]
    session = deploy_model(
        model_name,
        backend=backend,
        max_rows=config.max_rows,
        seed=config.seed,
    )
    rows = sum(t.rows for t in session.model.tables)
    hierarchy = scaled_tier_hierarchy(
        rows,
        policy=config.tiering_policy,
        hot_fraction=config.tiering_hot_fraction,
        warm_accesses=4096,
        sim_queries=512,
    )
    session.attach_tiers(
        hierarchy,
        popularity=PopularityModel(rows=rows, alpha=config.tiering_alpha),
        seed=config.seed,
    )
    block = tiering_lab(
        session,
        utilisations=config.serve_utilisations,
        duration_s=config.serve_duration_s,
        slo_ms=config.slo_ms,
        seed=config.seed,
    )
    return {"model": model_name, **block}


def _bench_telemetry(config: BenchConfig) -> dict[str, object] | None:
    """The v8 telemetry block: the observability plane's own numbers.

    Serves one poisson window through a routed cluster (the cluster
    block's tiers, or a single replica of the first swept backend when
    the cluster block is disabled) into a fresh
    :class:`~repro.telemetry.Telemetry` hub, then reads the headline
    figures back *out of the metric registry*: digest-estimated latency
    tails, per-tier dispatch shares, the spill share off the primary
    tier, and — when the tiering block is enabled — the steady-state
    tier hit rates counted by the cache cascade.  ``--compare`` diffs
    these, so drift in the telemetry plane itself (digest error,
    mis-counted dispatch) gates CI like any serving regression.
    """
    if not config.telemetry:
        return None
    from repro.cluster import ReplicaSpec, deploy_cluster
    from repro.serving.arrivals import poisson_arrivals
    from repro.serving.lab import lab_seed
    from repro.telemetry import Telemetry

    import numpy as np

    model_name = config.models[0]
    tiers = tuple(config.cluster_backends) or (config.resolved_backends()[0],)
    router = config.cluster_router if config.cluster_backends else "round-robin"
    cluster = deploy_cluster(
        [ReplicaSpec(model=model_name, backend=b) for b in tiers],
        router=router,
        slo_ms=config.slo_ms,
        max_rows=config.max_rows,
        seed=config.seed,
    )
    hub = Telemetry()
    rate = (
        config.cluster_utilisation * cluster.perf().throughput_items_per_s
    )
    rng = np.random.default_rng(
        lab_seed(config.seed, cluster.backend, "bench-telemetry")
    )
    arrivals = poisson_arrivals(rng, rate, config.serve_duration_s)
    cluster.serve(arrivals, telemetry=hub)
    digest = hub.metrics.histogram(
        f"serve.latency_ms.{cluster.backend}"
    ).digest
    dispatch = {
        tier: hub.metrics.counter(f"cluster.dispatch.{tier}").value
        for tier in cluster.tiers()
    }
    total = sum(dispatch.values())
    primary = cluster.tiers()[0]
    spill = hub.metrics.counter(f"cluster.spill.{primary}").value

    tier_hit_rates: dict[str, float] | None = None
    if config.tiering_policy:
        from repro.memory.tiers import scaled_tier_hierarchy
        from repro.serving.popularity import PopularityModel

        session = deploy_model(
            model_name,
            backend=config.resolved_backends()[0],
            max_rows=config.max_rows,
            seed=config.seed,
        )
        rows = sum(t.rows for t in session.model.tables)
        session.attach_tiers(
            scaled_tier_hierarchy(
                rows,
                policy=config.tiering_policy,
                hot_fraction=config.tiering_hot_fraction,
                warm_accesses=4096,
                sim_queries=512,
            ),
            popularity=PopularityModel(
                rows=rows, alpha=config.tiering_alpha
            ),
            seed=config.seed,
        )
        session.perf()  # feeds tiers.hits.* into the session's own hub
        hits = {
            name: session.telemetry.metrics.counter(
                f"tiers.hits.{name}"
            ).value
            for name in session.tier_hierarchy.names
        }
        accesses = sum(hits.values())
        tier_hit_rates = {
            name: (served / accesses if accesses else 0.0)
            for name, served in hits.items()
        }
    return {
        "model": model_name,
        "tiers": list(tiers),
        "router": router,
        "rate_per_s": rate,
        "utilisation": config.cluster_utilisation,
        "duration_s": config.serve_duration_s,
        "queries": digest.count,
        "latency_ms": {
            "p50": digest.quantile(50.0),
            "p99": digest.quantile(99.0),
            "p999": digest.quantile(99.9),
        },
        "dispatch_shares": {
            tier: (count / total if total else 0.0)
            for tier, count in dispatch.items()
        },
        "spill_share": (spill / total if total else 0.0),
        "tier_hit_rates": tier_hit_rates,
    }


def _bench_one(
    model_name: str, backend: str, config: BenchConfig
) -> dict[str, object]:
    """Deploy one (model, backend) pair and measure everything we quote."""
    started = time.perf_counter()
    session = deploy_model(
        model_name,
        backend=backend,
        max_rows=config.max_rows,
        seed=config.seed,
    )
    perf = session.perf()
    latencies = {
        str(batch): session.batch_latency_ms(batch)
        for batch in config.batches
    }
    fleet = session.fleet(config.target_qps)
    serving = session_lab(
        session,
        processes=config.serve_processes,
        utilisations=config.serve_utilisations,
        duration_s=config.serve_duration_s,
        slo_ms=config.slo_ms,
        seed=config.seed,
    )
    try:
        serving["fleet_sla"] = plan_fleet_sla(
            config.target_qps,
            session,
            slo_ms=config.slo_ms,
            duration_s=config.serve_duration_s,
            seed=config.seed,
        ).as_dict()
    except ValueError:
        # The SLO sits below this engine's latency floor: no fleet size
        # can meet it.  Record the absence; the schema allows null here.
        serving["fleet_sla"] = None
    plan = getattr(session, "plan", None)
    return {
        "model": model_name,
        "backend": backend,
        "precision": session.precision,
        "perf": perf.as_dict(),
        "batch_latency_ms": latencies,
        "fleet": fleet.as_dict(),
        "serving": serving,
        "planner": plan.summary() if plan is not None else None,
        "wall_clock_s": time.perf_counter() - started,
    }


def run_bench(
    config: BenchConfig,
    log: Callable[[str], None] | None = None,
) -> dict[str, object]:
    """Run one sweep and return the schema-versioned payload.

    ``log`` receives one progress line per (model, backend) pair; pass a
    stderr writer so stdout can stay machine-readable.  The payload is
    validated against :mod:`repro.bench.schema` before it is returned, so
    a malformed artifact can never leave this function.
    """
    _check_names(config)
    emit = log or (lambda _message: None)
    started = time.perf_counter()
    results = []
    backends = config.resolved_backends()
    multiplier = config.wall_clock_budget_multiplier
    for model_name in config.models:
        for backend in backends:
            result = _bench_one(model_name, backend, config)
            if multiplier is not None:
                result["wall_clock_budget_s"] = (
                    multiplier * result["wall_clock_s"]
                )
            perf = result["perf"]
            emit(
                f"bench {model_name}/{backend}: "
                f"{perf['latency_us']:.1f} us/query, "
                f"{perf['throughput_items_per_s']:,.0f} items/s, "
                f"${perf['usd_per_million_queries']:.4f}/1M "
                f"({result['wall_clock_s']:.2f}s)"
            )
            results.append(result)
    cluster_block = _bench_cluster(config)
    if cluster_block is not None:
        blended = cluster_block["result"]["blended"]
        emit(
            f"bench cluster {'+'.join(config.cluster_backends)} "
            f"({config.cluster_router}): "
            f"p99 {blended['p99_ms']:.3f} ms, "
            f"SLA {blended['sla_attainment']:.1%} @ "
            f"{cluster_block['rate_per_s']:,.0f}/s"
        )
    autoscale_block = _bench_autoscale(config)
    if autoscale_block is not None:
        agg = autoscale_block["result"]["aggregate"]
        savings = agg["usd_savings_vs_static"]
        emit(
            f"bench autoscale {autoscale_block['backend']} "
            f"({autoscale_block['policy']}): "
            f"mean {agg['mean_nodes']:.1f} nodes, "
            f"SLA {agg['sla_attainment']:.1%}, "
            + (
                f"{savings:+.1%} vs static"
                if savings is not None
                else "no static baseline"
            )
        )
    sharding_block = _bench_sharding(config)
    if sharding_block is not None:
        blended = sharding_block["result"]["blended"]
        plan = sharding_block["plan"]
        emit(
            f"bench sharding {sharding_block['tiers'][0]} "
            f"({sharding_block['strategy']}): "
            f"fan-out {plan['fanout']}, "
            f"p99 {blended['p99_ms']:.3f} ms, "
            f"peak node {plan['max_node_utilisation']:.1%} full"
        )
    tiering_block = _bench_tiering(config)
    if tiering_block is not None:
        steady = tiering_block["steady_state"]
        emit(
            f"bench tiering {tiering_block['backend']} "
            f"({tiering_block['policy']}): "
            f"hit rate {steady['hit_rate']:.1%}, "
            f"effective lookup {steady['effective_lookup_ns']:,.0f} ns "
            f"(hot {steady['hot_lookup_ns']:,.0f} ns)"
        )
    telemetry_block = _bench_telemetry(config)
    if telemetry_block is not None:
        latency = telemetry_block["latency_ms"]
        emit(
            f"bench telemetry {'+'.join(telemetry_block['tiers'])}: "
            f"digest p99 {latency['p99']:.3f} ms over "
            f"{telemetry_block['queries']:,} observed queries, "
            f"spill {telemetry_block['spill_share']:.1%}"
        )
    payload: dict[str, object] = {
        "suite": SUITE,
        "schema_version": SCHEMA_VERSION,
        "name": config.name,
        "config": {
            "models": list(config.models),
            "backends": list(backends),
            "batches": list(config.batches),
            "max_rows": config.max_rows,
            "seed": config.seed,
            "quick": config.quick,
            "target_qps": config.target_qps,
            "slo_ms": config.slo_ms,
            "serve_duration_s": config.serve_duration_s,
            "serve_processes": list(config.serve_processes),
            "serve_utilisations": list(config.serve_utilisations),
            "cluster_backends": list(config.cluster_backends),
            "cluster_router": config.cluster_router,
            "cluster_utilisation": config.cluster_utilisation,
            "autoscale_policy": config.autoscale_policy,
            "autoscale_windows": config.autoscale_windows,
            "sharding_strategy": config.sharding_strategy,
            "sharding_nodes": config.sharding_nodes,
            "sharding_node_gb": config.sharding_node_gb,
            "tiering_policy": config.tiering_policy,
            "tiering_alpha": config.tiering_alpha,
            "tiering_hot_fraction": config.tiering_hot_fraction,
            "telemetry": config.telemetry,
            "wall_clock_budget_multiplier": (
                config.wall_clock_budget_multiplier
            ),
        },
        "results": results,
        "cluster": cluster_block,
        "autoscale": autoscale_block,
        "sharding": sharding_block,
        "tiering": tiering_block,
        "telemetry": telemetry_block,
        "wall_clock_s": time.perf_counter() - started,
    }
    return validate_payload(payload)


def default_output_path(name: str) -> str:
    """The conventional artifact filename for a sweep name."""
    return f"BENCH_{name}.json"


def write_payload(payload: dict[str, object], path: str) -> None:
    """Write a validated payload to ``path`` (2-space indent + newline)."""
    validate_payload(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def config_summary(config: BenchConfig) -> str:
    """One human line describing a sweep (CLI progress header)."""
    fields = asdict(config)
    fields["backends"] = list(config.resolved_backends())
    return (
        f"sweep {fields['name']}: models={list(config.models)} "
        f"backends={fields['backends']} batches={list(config.batches)} "
        f"max_rows={config.max_rows} target_qps={config.target_qps:,.0f}"
    )
