"""Validate benchmark artifacts: ``python -m repro.bench FILE [FILE ...]``."""

from repro.bench.schema import main

raise SystemExit(main())
