"""Reproducible cross-backend benchmarking (``repro bench``).

One subsystem behind every comparative number in the repository: a sweep
of registered backends x model specs x batch sizes
(:func:`run_bench` / :class:`BenchConfig`), a schema-versioned JSON
artifact (``BENCH_<name>.json``, :mod:`repro.bench.schema`), and
regression deltas between two artifacts (:func:`compare_payloads`).  The
CI ``bench-smoke`` job runs the quick sweep on every push and validates
the artifact with ``python -m repro.bench.schema``.
"""

from repro.bench.compare import (
    METRICS,
    SERVING_METRICS,
    compare_payloads,
    regressions,
)
from repro.bench.runner import (
    DEFAULT_TARGET_QPS,
    BenchConfig,
    config_summary,
    default_output_path,
    run_bench,
    write_payload,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SUITE,
    BenchSchemaError,
    validate_file,
    validate_payload,
)

__all__ = [
    "BenchConfig",
    "BenchSchemaError",
    "DEFAULT_TARGET_QPS",
    "METRICS",
    "SERVING_METRICS",
    "SCHEMA_VERSION",
    "SUITE",
    "compare_payloads",
    "config_summary",
    "default_output_path",
    "regressions",
    "run_bench",
    "validate_file",
    "validate_payload",
    "write_payload",
]
