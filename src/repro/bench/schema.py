"""Schema of the ``BENCH_<name>.json`` benchmark artifact.

One schema version covers one shape of payload; consumers (the CI
``bench-smoke`` job, ``repro bench --compare``, plotting scripts) refuse
anything else.  The validator is hand-rolled — it needs to run from a bare
``numpy``-only install, so no ``jsonschema`` dependency — and reports the
JSON path of the first offending field.

Run as a module to validate a file (the CI job does exactly this)::

    python -m repro.bench BENCH_quick.json
"""

from __future__ import annotations

import json
import math
import sys
from typing import Sequence

#: Version of the payload shape documented here.  Bump on any change that
#: could break a consumer: removed/renamed keys, changed types or units.
#: v2 added the per-result ``serving`` block (latency-under-load curves
#: per arrival process + the SLA-aware fleet plan) and the serving knobs
#: in ``config``.  v3 added the top-level ``cluster`` block (a routed
#: heterogeneous cluster served at a fixed utilisation: blended and
#: per-tier latency plus fleet cost; null when the sweep disabled it)
#: and the cluster knobs in ``config``.  v4 added the top-level
#: ``autoscale`` block (an elastic fleet driven through a diurnal trace
#: by a scaler policy: per-window timeline, blended cost, and the
#: peak-sized static baseline; null when the sweep disabled it) and the
#: autoscale knobs in ``config``.  v5 added the top-level ``sharding``
#: block (one model sharded across a cluster's nodes by the distplan
#: planner and served fan-out/gather: the capacity-validated plan with
#: per-node occupancy plus the fan-out serving result; null when the
#: sweep disabled it) and the sharding knobs in ``config``.  v6 added
#: the optional per-result ``wall_clock_budget_s`` ceiling (absent or
#: null means unbudgeted): an explicit opt-in wall-clock budget that
#: ``--compare --fail-on-regression`` enforces as an absolute limit on
#: the *other* payload's measured ``wall_clock_s``, so a committed
#: baseline can gate CI runtime without chasing noisy raw deltas.  v7
#: added the top-level ``tiering`` block (a tier-attached deployment —
#: HBM hot-row cache over DDR over host — under Zipf-skewed popularity:
#: the hierarchy, the warm steady-state hit rate, and warm-vs-cold
#: latency curves; null when the sweep disabled it), the tiering knobs
#: in ``config``, and the per-window ``cold_nodes`` count in the
#: autoscale timeline.  v8 added the top-level ``telemetry`` block (one
#: routed serve observed through the always-on metric hub: digest-
#: estimated latency tails, per-tier dispatch shares, the spill share
#: off the primary tier, and the cache cascade's tier hit rates; null
#: when the sweep disabled it) and the ``telemetry`` boolean knob in
#: ``config``.
SCHEMA_VERSION = 8

#: The ``suite`` discriminator: distinguishes our artifacts from any other
#: JSON a pipeline might hand the validator.
SUITE = "repro-bench"

#: Numeric fields every ``perf`` record must carry, all strictly positive
#: (mirrors :class:`repro.runtime.perf.PerfEstimate`).
PERF_POSITIVE_FIELDS = (
    "latency_us",
    "serving_latency_ms",
    "ii_ns",
    "throughput_items_per_s",
    "throughput_gops",
    "serving_batch",
    "usd_per_hour",
    "usd_per_million_queries",
)

#: Numeric fields every ``fleet`` record must carry, all strictly positive
#: (mirrors :class:`repro.deploy.capacity.FleetPlan.as_dict`).
FLEET_POSITIVE_FIELDS = (
    "target_qps",
    "nodes",
    "per_node_qps",
    "fleet_qps",
    "usd_per_hour",
    "usd_per_million_queries",
    "latency_ms",
    "utilisation",
)

#: Numeric fields every latency-under-load curve point must carry, all
#: strictly positive (mirrors :class:`repro.serving.lab.LoadPoint`).
POINT_POSITIVE_FIELDS = (
    "rate_per_s",
    "utilisation",
    "queries",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "p999_ms",
    "tail_ms",
    "achieved_qps",
)


class BenchSchemaError(ValueError):
    """A payload does not conform to the benchmark artifact schema."""


def _fail(path: str, message: str) -> None:
    raise BenchSchemaError(f"{path}: {message}")


def _get(obj: dict, path: str, key: str) -> object:
    if key not in obj:
        _fail(f"{path}.{key}", "missing required key")
    return obj[key]


def _check_str(obj: dict, path: str, key: str) -> str:
    value = _get(obj, path, key)
    if not isinstance(value, str) or not value:
        _fail(f"{path}.{key}", f"expected a non-empty string, got {value!r}")
    return value


def _check_number(
    obj: dict, path: str, key: str, *, minimum: float | None = None,
    exclusive: bool = False,
) -> float:
    value = _get(obj, path, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{path}.{key}", f"expected a number, got {value!r}")
    # json.load happily parses bare NaN/Infinity, and NaN sails through
    # every comparison below — reject non-finite values outright so the
    # CI gate (and --compare's delta arithmetic) can trust the artifact.
    if not math.isfinite(value):
        _fail(f"{path}.{key}", f"expected a finite number, got {value!r}")
    if minimum is not None:
        if exclusive and value <= minimum:
            _fail(f"{path}.{key}", f"expected > {minimum}, got {value!r}")
        if not exclusive and value < minimum:
            _fail(f"{path}.{key}", f"expected >= {minimum}, got {value!r}")
    return float(value)


def _check_str_list(obj: dict, path: str, key: str) -> list[str]:
    value = _get(obj, path, key)
    if not isinstance(value, list) or not value:
        _fail(f"{path}.{key}", f"expected a non-empty list, got {value!r}")
    for i, item in enumerate(value):
        if not isinstance(item, str) or not item:
            _fail(f"{path}.{key}[{i}]", f"expected a string, got {item!r}")
    return value


#: Numeric fields the cluster block's blended record must carry, all
#: strictly positive (mirrors
#: :meth:`repro.cluster.cluster.ClusterServingResult.as_dict`).
CLUSTER_BLENDED_POSITIVE_FIELDS = (
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "p999_ms",
    "achieved_qps",
)


def _check_config(config: object, path: str) -> None:
    if not isinstance(config, dict):
        _fail(path, f"expected an object, got {config!r}")
    _check_str_list(config, path, "models")
    _check_str_list(config, path, "backends")
    batches = _get(config, path, "batches")
    if not isinstance(batches, list) or not batches:
        _fail(f"{path}.batches", f"expected a non-empty list, got {batches!r}")
    for i, batch in enumerate(batches):
        if isinstance(batch, bool) or not isinstance(batch, int) or batch <= 0:
            _fail(
                f"{path}.batches[{i}]",
                f"expected a positive integer, got {batch!r}",
            )
    max_rows = _get(config, path, "max_rows")
    if max_rows is not None and (
        isinstance(max_rows, bool)
        or not isinstance(max_rows, int)
        or max_rows <= 0
    ):
        _fail(
            f"{path}.max_rows",
            f"expected null or a positive integer, got {max_rows!r}",
        )
    seed = _get(config, path, "seed")
    if isinstance(seed, bool) or not isinstance(seed, int):
        _fail(f"{path}.seed", f"expected an integer, got {seed!r}")
    quick = _get(config, path, "quick")
    if not isinstance(quick, bool):
        _fail(f"{path}.quick", f"expected a boolean, got {quick!r}")
    _check_number(config, path, "target_qps", minimum=0, exclusive=True)
    _check_number(config, path, "slo_ms", minimum=0, exclusive=True)
    _check_number(config, path, "serve_duration_s", minimum=0, exclusive=True)
    _check_str_list(config, path, "serve_processes")
    utilisations = _get(config, path, "serve_utilisations")
    if not isinstance(utilisations, list) or not utilisations:
        _fail(
            f"{path}.serve_utilisations",
            f"expected a non-empty list, got {utilisations!r}",
        )
    for i, u in enumerate(utilisations):
        if isinstance(u, bool) or not isinstance(u, (int, float)) or u <= 0:
            _fail(
                f"{path}.serve_utilisations[{i}]",
                f"expected a positive number, got {u!r}",
            )
    # v3 cluster knobs: an empty backend list means the sweep disabled
    # the cluster block (and ``$.cluster`` must then be null).
    cluster_backends = _get(config, path, "cluster_backends")
    if not isinstance(cluster_backends, list):
        _fail(
            f"{path}.cluster_backends",
            f"expected a list, got {cluster_backends!r}",
        )
    for i, item in enumerate(cluster_backends):
        if not isinstance(item, str) or not item:
            _fail(
                f"{path}.cluster_backends[{i}]",
                f"expected a string, got {item!r}",
            )
    _check_str(config, path, "cluster_router")
    _check_number(
        config, path, "cluster_utilisation", minimum=0, exclusive=True
    )
    # v4 autoscale knobs: an empty policy string means the sweep disabled
    # the autoscale block (and ``$.autoscale`` must then be null).
    policy = _get(config, path, "autoscale_policy")
    if not isinstance(policy, str):
        _fail(
            f"{path}.autoscale_policy",
            f"expected a string, got {policy!r}",
        )
    _check_int(config, path, "autoscale_windows", minimum=1)
    # v5 sharding knobs: an empty strategy string means the sweep
    # disabled the sharding block (and ``$.sharding`` must then be null).
    strategy = _get(config, path, "sharding_strategy")
    if not isinstance(strategy, str):
        _fail(
            f"{path}.sharding_strategy",
            f"expected a string, got {strategy!r}",
        )
    _check_int(config, path, "sharding_nodes", minimum=1)
    _check_number(
        config, path, "sharding_node_gb", minimum=0, exclusive=True
    )
    # v7 tiering knobs: an empty policy string means the sweep disabled
    # the tiering block (and ``$.tiering`` must then be null).
    tiering_policy = _get(config, path, "tiering_policy")
    if not isinstance(tiering_policy, str):
        _fail(
            f"{path}.tiering_policy",
            f"expected a string, got {tiering_policy!r}",
        )
    _check_number(config, path, "tiering_alpha", minimum=0)
    _check_number(
        config, path, "tiering_hot_fraction", minimum=0, exclusive=True
    )
    # v8 telemetry knob: false means the sweep disabled the telemetry
    # block (and ``$.telemetry`` must then be null).
    telemetry = _get(config, path, "telemetry")
    if not isinstance(telemetry, bool):
        _fail(
            f"{path}.telemetry",
            f"expected a boolean, got {telemetry!r}",
        )


def _check_perf(perf: object, path: str) -> None:
    if not isinstance(perf, dict):
        _fail(path, f"expected an object, got {perf!r}")
    _check_str(perf, path, "backend")
    _check_str(perf, path, "precision")
    _check_str(perf, path, "bottleneck")
    for key in PERF_POSITIVE_FIELDS:
        _check_number(perf, path, key, minimum=0, exclusive=True)


def _check_fleet(fleet: object, path: str) -> None:
    if not isinstance(fleet, dict):
        _fail(path, f"expected an object, got {fleet!r}")
    _check_str(fleet, path, "engine")
    for key in FLEET_POSITIVE_FIELDS:
        _check_number(fleet, path, key, minimum=0, exclusive=True)


def _check_bool(obj: dict, path: str, key: str) -> bool:
    value = _get(obj, path, key)
    if not isinstance(value, bool):
        _fail(f"{path}.{key}", f"expected a boolean, got {value!r}")
    return value


def _check_fraction(obj: dict, path: str, key: str) -> float:
    value = _check_number(obj, path, key, minimum=0)
    if value > 1:
        _fail(f"{path}.{key}", f"expected a fraction in [0, 1], got {value!r}")
    return value


def _check_point(point: object, path: str) -> None:
    if not isinstance(point, dict):
        _fail(path, f"expected an object, got {point!r}")
    for key in POINT_POSITIVE_FIELDS:
        _check_number(point, path, key, minimum=0, exclusive=True)
    _check_fraction(point, path, "sla_attainment")
    _check_bool(point, path, "meets_slo")


def _check_curve(curve: object, path: str) -> None:
    if not isinstance(curve, dict):
        _fail(path, f"expected an object, got {curve!r}")
    _check_str(curve, path, "backend")
    _check_str(curve, path, "process")
    _check_number(curve, path, "slo_ms", minimum=0, exclusive=True)
    _check_number(curve, path, "slo_percentile", minimum=0, exclusive=True)
    _check_number(curve, path, "duration_s", minimum=0, exclusive=True)
    _check_number(curve, path, "sla_capacity_per_s", minimum=0)
    knee = _get(curve, path, "knee_rate_per_s")
    if knee is not None:
        _check_number(curve, path, "knee_rate_per_s", minimum=0, exclusive=True)
    points = _get(curve, path, "points")
    if not isinstance(points, list) or not points:
        _fail(f"{path}.points", f"expected a non-empty list, got {points!r}")
    for i, point in enumerate(points):
        _check_point(point, f"{path}.points[{i}]")


def _check_fleet_sla(fleet: object, path: str) -> None:
    _check_fleet(fleet, path)
    _check_number(fleet, path, "slo_ms", minimum=0, exclusive=True)
    _check_number(fleet, path, "slo_percentile", minimum=0, exclusive=True)
    _check_str(fleet, path, "process")
    nodes = _get(fleet, path, "throughput_only_nodes")
    if isinstance(nodes, bool) or not isinstance(nodes, int) or nodes <= 0:
        _fail(
            f"{path}.throughput_only_nodes",
            f"expected a positive integer, got {nodes!r}",
        )
    _check_number(fleet, path, "observed_tail_ms", minimum=0)
    _check_fraction(fleet, path, "sla_attainment")
    _check_bool(fleet, path, "slo_bound")


def _check_serving(serving: object, path: str) -> None:
    """The v2 latency-under-load block: curves per process + SLA fleet."""
    if not isinstance(serving, dict):
        _fail(path, f"expected an object, got {serving!r}")
    _check_number(serving, path, "slo_ms", minimum=0, exclusive=True)
    _check_number(serving, path, "slo_percentile", minimum=0, exclusive=True)
    _check_number(serving, path, "duration_s", minimum=0, exclusive=True)
    processes = _get(serving, path, "processes")
    if not isinstance(processes, dict) or not processes:
        _fail(
            f"{path}.processes",
            f"expected a non-empty object, got {processes!r}",
        )
    for name, curve in processes.items():
        if not isinstance(name, str) or not name:
            _fail(f"{path}.processes", f"process keys must be strings, got {name!r}")
        _check_curve(curve, f"{path}.processes.{name}")
    fleet_sla = _get(serving, path, "fleet_sla")
    if fleet_sla is not None:
        # null means the SLO sits below the engine's latency floor — no
        # fleet size can meet it, which is a legitimate lab result.
        _check_fleet_sla(fleet_sla, f"{path}.fleet_sla")


def _check_cluster_tier(tier: object, path: str) -> None:
    if not isinstance(tier, dict):
        _fail(path, f"expected an object, got {tier!r}")
    for key in ("replicas", "queries"):
        value = _get(tier, path, key)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            _fail(
                f"{path}.{key}",
                f"expected a non-negative integer, got {value!r}",
            )
    if tier["replicas"] == 0:
        _fail(f"{path}.replicas", "expected >= 1 replica")
    _check_fraction(tier, path, "share")
    if tier["queries"] > 0:
        # Latency statistics only exist for tiers that served queries;
        # an idle overflow tier legitimately carries counts alone.
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            _check_number(tier, path, key, minimum=0, exclusive=True)
        _check_fraction(tier, path, "sla_attainment")


def _check_cluster_result(result: object, rpath: str) -> None:
    """A blended + per-tier serving result (cluster and sharding blocks)."""
    if not isinstance(result, dict):
        _fail(rpath, f"expected an object, got {result!r}")
    _check_str(result, rpath, "router")
    queries = _get(result, rpath, "queries")
    if isinstance(queries, bool) or not isinstance(queries, int) or queries <= 0:
        _fail(
            f"{rpath}.queries",
            f"expected a positive integer, got {queries!r}",
        )
    blended = _get(result, rpath, "blended")
    if not isinstance(blended, dict):
        _fail(f"{rpath}.blended", f"expected an object, got {blended!r}")
    for key in CLUSTER_BLENDED_POSITIVE_FIELDS:
        _check_number(
            blended, f"{rpath}.blended", key, minimum=0, exclusive=True
        )
    _check_fraction(blended, f"{rpath}.blended", "sla_attainment")
    tiers = _get(result, rpath, "tiers")
    if not isinstance(tiers, dict) or not tiers:
        _fail(f"{rpath}.tiers", f"expected a non-empty object, got {tiers!r}")
    for name, tier in tiers.items():
        if not isinstance(name, str) or not name:
            _fail(f"{rpath}.tiers", f"tier keys must be strings, got {name!r}")
        _check_cluster_tier(tier, f"{rpath}.tiers.{name}")
    _check_number(result, rpath, "usd_per_hour", minimum=0, exclusive=True)
    _check_number(result, rpath, "usd_per_million_queries", minimum=0)


def _check_cluster(cluster: object, path: str) -> None:
    """The v3 routed-cluster block: blended + per-tier serving stats."""
    if not isinstance(cluster, dict):
        _fail(path, f"expected an object, got {cluster!r}")
    _check_str(cluster, path, "model")
    _check_str_list(cluster, path, "tiers")
    _check_str(cluster, path, "router")
    _check_number(cluster, path, "rate_per_s", minimum=0, exclusive=True)
    _check_number(cluster, path, "utilisation", minimum=0, exclusive=True)
    _check_number(cluster, path, "duration_s", minimum=0, exclusive=True)
    _check_number(cluster, path, "slo_ms", minimum=0, exclusive=True)
    _check_cluster_result(_get(cluster, path, "result"), f"{path}.result")


def _check_int(
    obj: dict, path: str, key: str, *, minimum: int = 0
) -> int:
    value = _get(obj, path, key)
    if isinstance(value, bool) or not isinstance(value, int) or (
        value < minimum
    ):
        _fail(
            f"{path}.{key}",
            f"expected an integer >= {minimum}, got {value!r}",
        )
    return value


def _check_autoscale_window(window: object, path: str) -> None:
    if not isinstance(window, dict):
        _fail(path, f"expected an object, got {window!r}")
    _check_int(window, path, "index")
    _check_int(window, path, "nodes", minimum=1)
    _check_int(window, path, "pending_nodes")
    _check_int(window, path, "desired_nodes", minimum=1)
    _check_int(window, path, "queries")
    _check_number(window, path, "t_s", minimum=0)
    _check_number(window, path, "interval_s", minimum=0, exclusive=True)
    _check_number(window, path, "offered_rate_per_s", minimum=0)
    _check_number(window, path, "utilisation", minimum=0)
    _check_number(window, path, "queue_depth", minimum=0)
    for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "tail_ms"):
        _check_number(window, path, key, minimum=0, exclusive=True)
    _check_fraction(window, path, "sla_attainment")
    _check_fraction(window, path, "overflow_share")
    # v7: nodes serving with not-yet-warm tier caches (0 on flat runs).
    _check_int(window, path, "cold_nodes")


def _check_autoscale(autoscale: object, path: str) -> None:
    """The v4 elastic-fleet block: timeline + cost + static baseline."""
    if not isinstance(autoscale, dict):
        _fail(path, f"expected an object, got {autoscale!r}")
    _check_str(autoscale, path, "model")
    _check_str(autoscale, path, "backend")
    _check_str(autoscale, path, "policy")
    _check_int(autoscale, path, "windows", minimum=1)
    _check_number(autoscale, path, "slo_ms", minimum=0, exclusive=True)
    result = _get(autoscale, path, "result")
    if not isinstance(result, dict):
        _fail(f"{path}.result", f"expected an object, got {result!r}")
    rpath = f"{path}.result"
    _check_str(result, rpath, "backend")
    _check_str(result, rpath, "policy")
    _check_number(result, rpath, "slo_ms", minimum=0, exclusive=True)
    _check_number(result, rpath, "slo_percentile", minimum=0, exclusive=True)
    _check_number(result, rpath, "per_node_qps", minimum=0, exclusive=True)
    _check_number(
        result, rpath, "node_usd_per_hour", minimum=0, exclusive=True
    )
    _check_int(result, rpath, "min_nodes", minimum=1)
    _check_int(result, rpath, "max_nodes", minimum=1)
    _check_number(result, rpath, "provision_delay_s", minimum=0)
    _check_number(result, rpath, "cooldown_s", minimum=0)
    trace = _get(result, rpath, "trace")
    if not isinstance(trace, dict):
        _fail(f"{rpath}.trace", f"expected an object, got {trace!r}")
    for key in ("mean_rate_per_s", "peak_rate_per_s", "duration_s"):
        _check_number(trace, f"{rpath}.trace", key, minimum=0, exclusive=True)
    timeline = _get(result, rpath, "timeline")
    if not isinstance(timeline, list) or not timeline:
        _fail(
            f"{rpath}.timeline",
            f"expected a non-empty list, got {timeline!r}",
        )
    for i, window in enumerate(timeline):
        _check_autoscale_window(window, f"{rpath}.timeline[{i}]")
    aggregate = _get(result, rpath, "aggregate")
    if not isinstance(aggregate, dict):
        _fail(f"{rpath}.aggregate", f"expected an object, got {aggregate!r}")
    apath = f"{rpath}.aggregate"
    _check_number(aggregate, apath, "mean_nodes", minimum=0, exclusive=True)
    _check_int(aggregate, apath, "peak_nodes", minimum=1)
    _check_int(aggregate, apath, "min_nodes", minimum=1)
    _check_int(aggregate, apath, "scaling_actions")
    for key in ("node_hours", "usd_total", "usd_per_hour", "worst_tail_ms"):
        _check_number(aggregate, apath, key, minimum=0, exclusive=True)
    _check_number(aggregate, apath, "usd_per_million_queries", minimum=0)
    _check_number(aggregate, apath, "offered_queries", minimum=0)
    _check_fraction(aggregate, apath, "sla_attainment")
    _check_fraction(aggregate, apath, "overflow_share")
    savings = _get(aggregate, apath, "usd_savings_vs_static")
    if savings is not None:
        # Savings may legitimately be negative (elasticity cost more);
        # only the type and finiteness are pinned.
        _check_number(aggregate, apath, "usd_savings_vs_static")
    static = _get(result, rpath, "static_baseline")
    if static is not None:
        # null means the SLO sits below the engine's latency floor — no
        # static fleet size can meet it, which is a legitimate result.
        if not isinstance(static, dict):
            _fail(
                f"{rpath}.static_baseline",
                f"expected null or an object, got {static!r}",
            )
        spath = f"{rpath}.static_baseline"
        _check_int(static, spath, "nodes", minimum=1)
        _check_int(static, spath, "throughput_only_nodes", minimum=1)
        for key in ("usd_per_hour", "usd_total"):
            _check_number(static, spath, key, minimum=0, exclusive=True)
        _check_number(static, spath, "usd_per_million_queries", minimum=0)
        _check_fraction(static, spath, "sla_attainment")


def _check_plan_node(node: object, path: str) -> None:
    if not isinstance(node, dict):
        _fail(path, f"expected an object, got {node!r}")
    _check_int(node, path, "node")
    _check_str(node, path, "backend")
    _check_number(node, path, "capacity_gb", minimum=0, exclusive=True)
    _check_number(node, path, "bytes", minimum=0)
    _check_fraction(node, path, "utilisation")
    _check_int(node, path, "shards")


def _check_plan(plan: object, path: str) -> None:
    """A distplan :class:`~repro.distplan.plan.ShardingPlan` summary."""
    if not isinstance(plan, dict):
        _fail(path, f"expected an object, got {plan!r}")
    _check_str(plan, path, "model")
    _check_str(plan, path, "strategy")
    _check_number(plan, path, "total_gb", minimum=0, exclusive=True)
    _check_int(plan, path, "fanout", minimum=1)
    _check_int(plan, path, "shards", minimum=1)
    _check_int(plan, path, "sharded_tables")
    # A valid plan never overflows a node, so max utilisation is a
    # fraction — the capacity check is re-asserted here on the artifact.
    _check_fraction(plan, path, "max_node_utilisation")
    nodes = _get(plan, path, "nodes")
    if not isinstance(nodes, list) or not nodes:
        _fail(f"{path}.nodes", f"expected a non-empty list, got {nodes!r}")
    for i, node in enumerate(nodes):
        _check_plan_node(node, f"{path}.nodes[{i}]")


def _check_sharding(sharding: object, path: str) -> None:
    """The v5 sharded-serving block: plan + fan-out serving result."""
    if not isinstance(sharding, dict):
        _fail(path, f"expected an object, got {sharding!r}")
    _check_str(sharding, path, "model")
    _check_str_list(sharding, path, "tiers")
    _check_str(sharding, path, "strategy")
    _check_int(sharding, path, "nodes", minimum=1)
    _check_number(sharding, path, "node_gb", minimum=0, exclusive=True)
    _check_number(sharding, path, "rate_per_s", minimum=0, exclusive=True)
    _check_number(sharding, path, "utilisation", minimum=0, exclusive=True)
    _check_number(sharding, path, "duration_s", minimum=0, exclusive=True)
    _check_number(sharding, path, "slo_ms", minimum=0, exclusive=True)
    _check_plan(_get(sharding, path, "plan"), f"{path}.plan")
    result = _get(sharding, path, "result")
    _check_cluster_result(result, f"{path}.result")
    _check_int(result, f"{path}.result", "fanout", minimum=1)
    _check_str(result, f"{path}.result", "strategy")


def _check_tiering(tiering: object, path: str) -> None:
    """The v7 tiered-storage block: hierarchy + warm/cold curves."""
    if not isinstance(tiering, dict):
        _fail(path, f"expected an object, got {tiering!r}")
    _check_str(tiering, path, "model")
    _check_str(tiering, path, "backend")
    _check_str(tiering, path, "policy")
    hierarchy = _get(tiering, path, "hierarchy")
    if not isinstance(hierarchy, dict):
        _fail(f"{path}.hierarchy", f"expected an object, got {hierarchy!r}")
    hpath = f"{path}.hierarchy"
    _check_str(hierarchy, hpath, "policy")
    _check_int(hierarchy, hpath, "row_bytes", minimum=1)
    _check_int(hierarchy, hpath, "warm_accesses")
    tiers = _get(hierarchy, hpath, "tiers")
    if not isinstance(tiers, list) or len(tiers) < 2:
        _fail(
            f"{hpath}.tiers",
            f"expected a list of >= 2 tiers, got {tiers!r}",
        )
    for i, tier in enumerate(tiers):
        tpath = f"{hpath}.tiers[{i}]"
        if not isinstance(tier, dict):
            _fail(tpath, f"expected an object, got {tier!r}")
        _check_str(tier, tpath, "name")
        _check_int(tier, tpath, "capacity_bytes", minimum=1)
        _check_int(tier, tpath, "capacity_rows")
        _check_number(tier, tpath, "access_ns", minimum=0, exclusive=True)
    popularity = _get(tiering, path, "popularity")
    if not isinstance(popularity, dict):
        _fail(
            f"{path}.popularity",
            f"expected an object, got {popularity!r}",
        )
    ppath = f"{path}.popularity"
    _check_int(popularity, ppath, "rows", minimum=1)
    _check_number(popularity, ppath, "alpha", minimum=0)
    _check_number(popularity, ppath, "drift_rows_per_s", minimum=0)
    steady = _get(tiering, path, "steady_state")
    if not isinstance(steady, dict):
        _fail(
            f"{path}.steady_state", f"expected an object, got {steady!r}"
        )
    spath = f"{path}.steady_state"
    _check_fraction(steady, spath, "hit_rate")
    _check_number(
        steady, spath, "effective_lookup_ns", minimum=0, exclusive=True
    )
    _check_number(
        steady, spath, "hot_lookup_ns", minimum=0, exclusive=True
    )
    _check_int(steady, spath, "lookups_per_query", minimum=1)
    fractions = _get(steady, spath, "tier_fractions")
    if not isinstance(fractions, dict) or not fractions:
        _fail(
            f"{spath}.tier_fractions",
            f"expected a non-empty object, got {fractions!r}",
        )
    for name in fractions:
        _check_fraction(fractions, f"{spath}.tier_fractions", name)
    _check_number(tiering, path, "slo_ms", minimum=0, exclusive=True)
    _check_curve(_get(tiering, path, "warm"), f"{path}.warm")
    _check_curve(_get(tiering, path, "cold"), f"{path}.cold")


def _check_telemetry(telemetry: object, path: str) -> None:
    """The v8 telemetry block: digest tails + dispatch/spill/hit shares."""
    if not isinstance(telemetry, dict):
        _fail(path, f"expected an object, got {telemetry!r}")
    _check_str(telemetry, path, "model")
    _check_str_list(telemetry, path, "tiers")
    _check_str(telemetry, path, "router")
    _check_number(telemetry, path, "rate_per_s", minimum=0, exclusive=True)
    _check_number(telemetry, path, "utilisation", minimum=0, exclusive=True)
    _check_number(telemetry, path, "duration_s", minimum=0, exclusive=True)
    _check_int(telemetry, path, "queries", minimum=1)
    latency = _get(telemetry, path, "latency_ms")
    if not isinstance(latency, dict):
        _fail(f"{path}.latency_ms", f"expected an object, got {latency!r}")
    for key in ("p50", "p99", "p999"):
        _check_number(
            latency, f"{path}.latency_ms", key, minimum=0, exclusive=True
        )
    shares = _get(telemetry, path, "dispatch_shares")
    if not isinstance(shares, dict) or not shares:
        _fail(
            f"{path}.dispatch_shares",
            f"expected a non-empty object, got {shares!r}",
        )
    for name in shares:
        _check_fraction(shares, f"{path}.dispatch_shares", name)
    _check_fraction(telemetry, path, "spill_share")
    hit_rates = _get(telemetry, path, "tier_hit_rates")
    if hit_rates is not None:
        # null when the sweep's tiering block is disabled — there is
        # then no cache cascade to count hits from.
        if not isinstance(hit_rates, dict) or not hit_rates:
            _fail(
                f"{path}.tier_hit_rates",
                f"expected null or a non-empty object, got {hit_rates!r}",
            )
        for name in hit_rates:
            _check_fraction(hit_rates, f"{path}.tier_hit_rates", name)


def _check_result(result: object, path: str) -> None:
    if not isinstance(result, dict):
        _fail(path, f"expected an object, got {result!r}")
    _check_str(result, path, "model")
    _check_str(result, path, "backend")
    _check_str(result, path, "precision")
    _check_perf(_get(result, path, "perf"), f"{path}.perf")
    latencies = _get(result, path, "batch_latency_ms")
    if not isinstance(latencies, dict) or not latencies:
        _fail(
            f"{path}.batch_latency_ms",
            f"expected a non-empty object, got {latencies!r}",
        )
    for key in latencies:
        if not isinstance(key, str) or not key.isdigit() or int(key) <= 0:
            _fail(
                f"{path}.batch_latency_ms",
                f"batch keys must be positive-integer strings, got {key!r}",
            )
        _check_number(
            latencies, f"{path}.batch_latency_ms", key,
            minimum=0, exclusive=True,
        )
    _check_fleet(_get(result, path, "fleet"), f"{path}.fleet")
    _check_serving(_get(result, path, "serving"), f"{path}.serving")
    planner = _get(result, path, "planner")
    if planner is not None and not isinstance(planner, dict):
        _fail(f"{path}.planner", f"expected null or an object, got {planner!r}")
    _check_number(result, path, "wall_clock_s", minimum=0)
    # v6: budgets are opt-in — the key may be absent or null; when set it
    # is a strictly positive ceiling the perf gate compares wall clocks
    # against.
    if result.get("wall_clock_budget_s") is not None:
        _check_number(
            result, path, "wall_clock_budget_s", minimum=0, exclusive=True
        )


def validate_payload(payload: object) -> dict:
    """Validate one benchmark payload against the current schema version.

    Returns the payload (typed as a dict) so calls can be chained; raises
    :class:`BenchSchemaError` naming the offending JSON path otherwise.
    Unknown extra keys are allowed everywhere — the schema pins what
    consumers rely on, not what producers may add.
    """
    if not isinstance(payload, dict):
        raise BenchSchemaError(
            f"$: expected a JSON object, got {type(payload).__name__}"
        )
    suite = _check_str(payload, "$", "suite")
    if suite != SUITE:
        _fail("$.suite", f"expected {SUITE!r}, got {suite!r}")
    version = _get(payload, "$", "schema_version")
    # isinstance guard: bool compares equal to int (True == 1), and every
    # other numeric field rejects bool the same way.
    if isinstance(version, bool) or version != SCHEMA_VERSION:
        _fail(
            "$.schema_version",
            f"expected {SCHEMA_VERSION}, got {version!r} "
            "(regenerate the artifact or upgrade the consumer)",
        )
    _check_str(payload, "$", "name")
    _check_config(_get(payload, "$", "config"), "$.config")
    _check_number(payload, "$", "wall_clock_s", minimum=0)
    cluster = _get(payload, "$", "cluster")
    if cluster is not None:
        # null means the sweep ran with cluster_backends=() — the block
        # is opt-out-able, its presence (the key) is not.
        _check_cluster(cluster, "$.cluster")
    autoscale = _get(payload, "$", "autoscale")
    if autoscale is not None:
        # Same contract as the cluster block: opt-out-able via
        # autoscale_policy="", but the key itself must exist.
        _check_autoscale(autoscale, "$.autoscale")
    sharding = _get(payload, "$", "sharding")
    if sharding is not None:
        # Same contract again: opt-out-able via sharding_strategy="",
        # but the key itself must exist.
        _check_sharding(sharding, "$.sharding")
    tiering = _get(payload, "$", "tiering")
    if tiering is not None:
        # Same contract again: opt-out-able via tiering_policy="",
        # but the key itself must exist.
        _check_tiering(tiering, "$.tiering")
    telemetry = _get(payload, "$", "telemetry")
    if telemetry is not None:
        # Same contract again: opt-out-able via telemetry=false,
        # but the key itself must exist.
        _check_telemetry(telemetry, "$.telemetry")
    results = _get(payload, "$", "results")
    if not isinstance(results, list) or not results:
        _fail("$.results", f"expected a non-empty list, got {results!r}")
    seen: set[tuple[str, str]] = set()
    for i, result in enumerate(results):
        path = f"$.results[{i}]"
        _check_result(result, path)
        key = (result["model"], result["backend"])
        if key in seen:
            _fail(path, f"duplicate (model, backend) entry {key!r}")
        seen.add(key)
    return payload


def validate_file(path: str) -> dict:
    """Load ``path`` as JSON and validate it; returns the payload."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise BenchSchemaError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc
    return validate_payload(payload)


def main(argv: Sequence[str] | None = None) -> int:
    """Validate benchmark artifact files; exit non-zero on the first bad one."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.bench.schema FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in args:
        try:
            payload = validate_file(path)
        except BenchSchemaError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"ok {path}: schema v{payload['schema_version']}, "
            f"{len(payload['results'])} result(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
