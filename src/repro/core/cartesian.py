"""Cartesian-product merging of embedding tables (paper section 3.3).

Joining tables A (``r_A`` rows, ``d_A`` dims) and B (``r_B`` rows, ``d_B``
dims) produces a table with ``r_A * r_B`` rows of dimension ``d_A + d_B``:
row ``i * r_B + j`` is the concatenation ``A[i] ++ B[j]``.  One random DRAM
access then retrieves both embedding vectors, halving the number of memory
accesses at the cost of multiplicative storage.  Merges compose: a
:class:`MergeGroup` may contain any number of member tables (the planner's
heuristic rule 2 restricts itself to pairs, but the data structure — and the
brute-force oracle — support k-way products).

:class:`CartesianTable` is the *functional* merged table: it implements the
same ``lookup`` protocol as any other table, translates member indices to a
merged row index and back, and (for materialised use) can realise the
product array exactly as the FPGA's DRAM image would store it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.tables import EmbeddingTable, MaterializedTable, TableSpec


@dataclass(frozen=True)
class MergeGroup:
    """An ordered set of member table ids merged into one product table.

    A group with a single member is a table left unmerged; the uniform
    representation keeps allocation code free of special cases.
    """

    member_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.member_ids:
            raise ValueError("MergeGroup needs at least one member")
        if len(set(self.member_ids)) != len(self.member_ids):
            raise ValueError(f"duplicate members in group: {self.member_ids}")

    @property
    def is_merged(self) -> bool:
        return len(self.member_ids) > 1

    def __iter__(self):
        return iter(self.member_ids)

    def __len__(self) -> int:
        return len(self.member_ids)


def product_spec(
    group: MergeGroup, specs: Mapping[int, TableSpec], group_id: int | None = None
) -> TableSpec:
    """Spec of the merged table for ``group``.

    Rows multiply, dims add.  All members must share ``dtype_bytes`` and
    ``lookups_per_inference`` (the paper only merges tables that are looked
    up in lockstep — one vector per table per inference).
    """
    members = [specs[tid] for tid in group.member_ids]
    dtype_bytes = {m.dtype_bytes for m in members}
    if len(dtype_bytes) != 1:
        raise ValueError(
            f"cannot merge tables with mixed dtype_bytes: {sorted(dtype_bytes)}"
        )
    lookups = {m.lookups_per_inference for m in members}
    if len(lookups) != 1:
        raise ValueError(
            "cannot merge tables with different lookups_per_inference: "
            f"{sorted(lookups)}"
        )
    rows = math.prod(m.rows for m in members)
    dim = sum(m.dim for m in members)
    return TableSpec(
        table_id=group_id if group_id is not None else group.member_ids[0],
        rows=rows,
        dim=dim,
        dtype_bytes=dtype_bytes.pop(),
        lookups_per_inference=lookups.pop(),
    )


def storage_overhead_bytes(
    group: MergeGroup, specs: Mapping[int, TableSpec]
) -> int:
    """Extra bytes the product stores beyond its members combined."""
    return product_spec(group, specs).nbytes - sum(
        specs[tid].nbytes for tid in group.member_ids
    )


class CartesianTable:
    """Functional merged embedding table.

    Wraps the member :class:`EmbeddingTable` objects so lookups need no
    materialised product: the merged row for indices ``(i_1, ..., i_k)`` is
    the concatenation of the members' rows, which is by construction what
    the materialised product would store at the merged index.
    ``materialize`` builds that full product array for equivalence testing
    and for small on-device images.
    """

    def __init__(
        self,
        group: MergeGroup,
        members: Sequence[EmbeddingTable],
        group_id: int | None = None,
    ):
        if tuple(t.spec.table_id for t in members) != group.member_ids:
            raise ValueError(
                "members must be passed in group order: expected "
                f"{group.member_ids}, got {[t.spec.table_id for t in members]}"
            )
        self.group = group
        self.members = list(members)
        self.spec = product_spec(
            group, {t.spec.table_id: t.spec for t in members}, group_id=group_id
        )
        # Row strides for mixed-radix index translation: the merged index is
        # sum(i_k * stride_k), row-major in member order.
        strides = []
        acc = 1
        for member in reversed(self.members):
            strides.append(acc)
            acc *= member.spec.rows
        self._strides = np.array(list(reversed(strides)), dtype=np.int64)
        self._rows = np.array([t.spec.rows for t in self.members], dtype=np.int64)

    def merged_index(self, member_indices: np.ndarray) -> np.ndarray:
        """Translate per-member indices to merged row indices.

        ``member_indices`` has shape ``(batch, k)`` (or ``(k,)`` for a
        single lookup); returns shape ``(batch,)`` (or a scalar array).
        """
        idx = np.asarray(member_indices, dtype=np.int64)
        squeeze = idx.ndim == 1
        if squeeze:
            idx = idx[None, :]
        if idx.shape[1] != len(self.members):
            raise ValueError(
                f"expected {len(self.members)} member indices per lookup, "
                f"got shape {idx.shape}"
            )
        if idx.size and ((idx < 0).any() or (idx >= self._rows[None, :]).any()):
            raise IndexError("member index out of range for merged table")
        merged = idx @ self._strides
        return merged[0] if squeeze else merged

    def split_index(self, merged_indices: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`merged_index`: merged rows -> member indices."""
        merged = np.asarray(merged_indices, dtype=np.int64)
        squeeze = merged.ndim == 0
        merged = np.atleast_1d(merged)
        if merged.size and (merged.min() < 0 or merged.max() >= self.spec.rows):
            raise IndexError(
                f"merged index out of range [0, {self.spec.rows})"
            )
        out = (merged[:, None] // self._strides[None, :]) % self._rows[None, :]
        return out[0] if squeeze else out

    def lookup_members(self, member_indices: np.ndarray) -> np.ndarray:
        """Gather the concatenated vector for per-member indices.

        This is the access the FPGA performs in one DRAM read; functionally
        it equals concatenating each member's own lookup.
        """
        idx = np.asarray(member_indices, dtype=np.int64)
        squeeze = idx.ndim == 1
        if squeeze:
            idx = idx[None, :]
        parts = [
            member.lookup(idx[:, k]) for k, member in enumerate(self.members)
        ]
        out = np.concatenate(parts, axis=1)
        return out[0] if squeeze else out

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Standard table interface: gather by *merged* row index."""
        merged = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return self.lookup_members(self.split_index(merged))

    def materialize(self) -> MaterializedTable:
        """Build the full product array (row ``i*rB + j`` = ``A[i] ++ B[j]``).

        Only sensible for small products; the storage cost is exactly
        ``spec.nbytes``.
        """
        all_rows = np.arange(self.spec.rows, dtype=np.int64)
        return MaterializedTable(self.spec, self.lookup(all_rows))


def build_cartesian_tables(
    groups: Sequence[MergeGroup],
    tables: Mapping[int, EmbeddingTable],
) -> dict[MergeGroup, CartesianTable]:
    """Wrap each merged group's members into a :class:`CartesianTable`."""
    return {
        g: CartesianTable(g, [tables[tid] for tid in g.member_ids])
        for g in groups
        if g.is_merged
    }
