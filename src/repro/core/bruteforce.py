"""Exhaustive table-combination search — the oracle the heuristic is tested
against.

Section 3.4.1 sketches (and dismisses) brute force: enumerate every way of
selecting Cartesian candidates and every way of combining them — including
products of more than two tables — then allocate each outcome and keep the
best.  The factorial blow-up makes it unusable at production scale, but for
small instances (N <= ~9) it is a perfect optimality oracle: property tests
assert the ``O(N^2)`` heuristic stays within a bounded gap of this search.

Both searches share :func:`~repro.core.allocation.allocate_to_banks`, so the
comparison isolates the *merge-choice* quality of the heuristic rules.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.core.allocation import PlacementError, allocate_to_banks
from repro.core.cartesian import MergeGroup, product_spec
from repro.core.planner import Plan, PlannerConfig
from repro.core.tables import TableSpec
from repro.memory.spec import MemorySystemSpec
from repro.memory.timing import MemoryTimingModel, default_timing_model


def set_partitions(
    items: Sequence[int], max_group_size: int | None = None
) -> Iterator[list[tuple[int, ...]]]:
    """Yield every partition of ``items`` into non-empty groups.

    The number of partitions is the Bell number B(n); callers must keep
    ``n`` small.  ``max_group_size`` prunes partitions containing any group
    larger than the limit (e.g. 2 to mimic heuristic rule 2).
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for sub in set_partitions(rest, max_group_size):
        # First element joins an existing group...
        for i, group in enumerate(sub):
            if max_group_size is not None and len(group) + 1 > max_group_size:
                continue
            yield [*sub[:i], (first, *group), *sub[i + 1 :]]
        # ...or starts its own.
        yield [(first,), *sub]


def brute_force_plan(
    specs: Sequence[TableSpec],
    memory: MemorySystemSpec,
    timing: MemoryTimingModel | None = None,
    config: PlannerConfig | None = None,
    max_tables: int = 10,
    max_group_size: int | None = None,
) -> Plan:
    """Exhaustively search merge partitions and return the optimum.

    Every set-partition of the rule-1-eligible tables is considered (k-way
    products included unless ``max_group_size`` restricts them); products
    exceeding ``config.max_product_bytes`` are pruned.  Raises
    ``ValueError`` for instances larger than ``max_tables`` — use the
    heuristic planner for those.
    """
    if len(specs) > max_tables:
        raise ValueError(
            f"brute force limited to {max_tables} tables, got {len(specs)}; "
            "use repro.core.planner.plan_tables instead"
        )
    if timing is None:
        timing = default_timing_model(memory.axi)
    if config is None:
        config = PlannerConfig()
    by_id: Mapping[int, TableSpec] = {s.table_id: s for s in specs}
    eligible = [
        s.table_id for s in specs if s.rows <= config.max_candidate_rows
    ]
    fixed = [
        MergeGroup((s.table_id,))
        for s in specs
        if s.rows > config.max_candidate_rows
    ]

    best: Plan | None = None
    best_score: tuple[float, int] | None = None
    evaluated = 0
    for partition in set_partitions(eligible, max_group_size):
        groups: list[MergeGroup] = list(fixed)
        valid = True
        merged_candidates = 0
        for ids in partition:
            group = MergeGroup(tuple(ids))
            if (
                group.is_merged
                and product_spec(group, by_id).nbytes > config.max_product_bytes
            ):
                valid = False
                break
            if group.is_merged:
                merged_candidates += len(ids)
            groups.append(group)
        if not valid:
            continue
        try:
            placement = allocate_to_banks(groups, by_id, memory, timing)
        except PlacementError:
            continue
        evaluated += 1
        score = (
            placement.lookup_latency_ns(timing),
            placement.storage_bytes,
        )
        if best_score is None or score < best_score:
            best_score = score
            best = Plan(
                placement=placement,
                timing=timing,
                candidate_count=merged_candidates,
                config=config,
            )
    if best is None:
        raise PlacementError("brute force found no feasible allocation")
    best.evaluated = evaluated
    return best
