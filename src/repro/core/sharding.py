"""Row-sharding of oversized embedding tables (extension beyond the paper).

The paper's models fit their banks (the biggest tables go to the 16 GB DDR
channels), but nothing guarantees that in general: a single table can
exceed every bank.  This module splits a table's rows into contiguous
shards that are placed independently; one lookup touches exactly one shard
(``shard = index // rows_per_shard``), so sharding trades capacity
feasibility for at most one extra resident per channel.

Functionally, :class:`ShardedTable` routes each index to its shard and is
byte-identical to the unsharded table.  At the spec level,
:func:`shard_oversized` rewrites a model's table list, returning the new
specs plus a :class:`ShardMap` to translate between original and shard
ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.tables import EmbeddingTable, TableSpec


@dataclass(frozen=True)
class ShardInfo:
    """One shard of an original table."""

    shard_spec: TableSpec
    original_id: int
    row_offset: int


@dataclass(frozen=True)
class ShardMap:
    """Bookkeeping from original table ids to their shards."""

    shards_of: Mapping[int, tuple[ShardInfo, ...]]

    def shard_for_row(self, original_id: int, row: int) -> ShardInfo:
        shards = self.shards_of[original_id]
        if row >= 0:
            # :func:`shard_spec` emits equal-width shards (the last may be
            # ragged), so every offset is an exact multiple of the first
            # shard's width and the owner is ``row // width``.
            width = shards[0].shard_spec.rows
            owner = min(row // width, len(shards) - 1)
            info = shards[owner]
            if info.row_offset <= row < info.row_offset + info.shard_spec.rows:
                return info
            # Hand-built maps may be ragged anywhere; fall back to a scan.
            for info in shards:
                if (
                    info.row_offset
                    <= row
                    < info.row_offset + info.shard_spec.rows
                ):
                    return info
        raise IndexError(
            f"row {row} out of range for sharded table {original_id}"
        )

    @property
    def sharded_ids(self) -> list[int]:
        return [tid for tid, shards in self.shards_of.items() if len(shards) > 1]


def shard_spec(
    spec: TableSpec, max_bytes: int, next_id: int
) -> tuple[ShardInfo, ...]:
    """Split one table into contiguous row shards of at most ``max_bytes``."""
    if max_bytes <= 0:
        raise ValueError(f"max_bytes must be positive, got {max_bytes}")
    row_bytes = spec.dim * spec.dtype_bytes
    if row_bytes > max_bytes:
        raise ValueError(
            f"table {spec.table_id}: a single row ({row_bytes} B) exceeds "
            f"max_bytes ({max_bytes})"
        )
    if spec.nbytes <= max_bytes:
        return (ShardInfo(shard_spec=spec, original_id=spec.table_id, row_offset=0),)
    # Rows per shard from the byte budget (never exceeds max_bytes);
    # ceil-dividing the row count by a shard count can overshoot it.
    rows_per_shard = max_bytes // row_bytes
    shards = []
    offset = 0
    sid = next_id
    while offset < spec.rows:
        rows = min(rows_per_shard, spec.rows - offset)
        shards.append(
            ShardInfo(
                shard_spec=TableSpec(
                    table_id=sid,
                    rows=rows,
                    dim=spec.dim,
                    dtype_bytes=spec.dtype_bytes,
                    lookups_per_inference=spec.lookups_per_inference,
                ),
                original_id=spec.table_id,
                row_offset=offset,
            )
        )
        offset += rows
        sid += 1
    return tuple(shards)


def shard_oversized(
    specs: Sequence[TableSpec], max_bytes: int
) -> tuple[list[TableSpec], ShardMap]:
    """Rewrite a table list so no table exceeds ``max_bytes``.

    Unsharded tables keep their ids; shards get fresh ids above the
    existing maximum.
    """
    next_id = max(s.table_id for s in specs) + 1
    out: list[TableSpec] = []
    shards_of: dict[int, tuple[ShardInfo, ...]] = {}
    for spec in specs:
        infos = shard_spec(spec, max_bytes, next_id)
        if len(infos) > 1:
            next_id += len(infos)
        shards_of[spec.table_id] = infos
        out.extend(info.shard_spec for info in infos)
    return out, ShardMap(shards_of=shards_of)


class ShardedTable:
    """Functional view reuniting a table's shards.

    Implements the standard table protocol over the *original* index
    space; each lookup is routed to the owning shard.
    """

    def __init__(
        self,
        original: TableSpec,
        shards: Sequence[ShardInfo],
        tables: Mapping[int, EmbeddingTable],
    ):
        if not shards:
            raise ValueError("ShardedTable needs at least one shard")
        covered = sum(info.shard_spec.rows for info in shards)
        if covered != original.rows:
            raise ValueError(
                f"shards cover {covered} rows, original has {original.rows}"
            )
        self.spec = original
        self.shards = sorted(shards, key=lambda s: s.row_offset)
        self.tables = [tables[s.shard_spec.table_id] for s in self.shards]
        self._offsets = np.array(
            [s.row_offset for s in self.shards], dtype=np.int64
        )

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.spec.rows):
            raise IndexError(
                f"index out of range [0, {self.spec.rows}) for sharded table"
            )
        out = np.empty((idx.size, self.spec.dim), dtype=np.float32)
        owner = np.searchsorted(self._offsets, idx, side="right") - 1
        for s, table in enumerate(self.tables):
            mask = owner == s
            if mask.any():
                out[mask] = table.lookup(idx[mask] - self._offsets[s])
        return out
