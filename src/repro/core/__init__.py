"""MicroRec core: tables, Cartesian products, planner, engine."""

from repro.core.tables import (
    EmbeddingTable,
    MaterializedTable,
    TableSpec,
    VirtualTable,
    make_tables,
)
from repro.core.cartesian import (
    CartesianTable,
    MergeGroup,
    build_cartesian_tables,
    product_spec,
    storage_overhead_bytes,
)
from repro.core.allocation import (
    Placement,
    PlacementError,
    allocate_to_banks,
)
from repro.core.planner import Plan, PlannerConfig, pair_candidates, plan_tables
from repro.core.bruteforce import brute_force_plan, set_partitions
from repro.core.engine import MicroRecEngine
from repro.core.refine import refine_placement
from repro.core.sharding import (
    ShardedTable,
    ShardInfo,
    ShardMap,
    shard_oversized,
)

__all__ = [
    "TableSpec",
    "EmbeddingTable",
    "MaterializedTable",
    "VirtualTable",
    "make_tables",
    "MergeGroup",
    "CartesianTable",
    "product_spec",
    "storage_overhead_bytes",
    "build_cartesian_tables",
    "Placement",
    "PlacementError",
    "allocate_to_banks",
    "Plan",
    "PlannerConfig",
    "plan_tables",
    "pair_candidates",
    "brute_force_plan",
    "set_partitions",
    "MicroRecEngine",
    "refine_placement",
    "ShardedTable",
    "ShardInfo",
    "ShardMap",
    "shard_oversized",
]
