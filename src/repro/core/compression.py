"""Int8 embedding-table compression (extension).

Embedding storage dominates recommendation models (section 2.2); industry
commonly serves embeddings quantised to int8 with per-row scales.  For
MicroRec this interacts with both halves of the design:

* **capacity** — 4x smaller tables relax the per-bank limits that force
  large tables onto the two DDR channels;
* **latency** — a vector's AXI burst is 4x shorter, trimming the
  data-dependent part of each random access (the fixed initiation cost,
  which Cartesian merging attacks, is untouched — compression and merging
  are complementary, which the ``compression`` ablation bench shows).

:class:`QuantizedTable` implements the standard table protocol: lookups
dequantise on the fly, and the quantisation error is bounded by half a
step of the per-row scale (tested, including a property test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tables import EmbeddingTable, TableSpec


def compressed_spec(spec: TableSpec) -> TableSpec:
    """The spec of the int8 image of a table.

    Row payload becomes ``dim`` code bytes; the per-row fp32 scale adds 4
    bytes accounted as extra columns of the 1-byte dtype, so ``nbytes``
    and ``vector_bytes`` reflect what actually crosses the AXI port.
    """
    return TableSpec(
        table_id=spec.table_id,
        rows=spec.rows,
        dim=spec.dim + 4,  # + fp32 scale, in byte units
        dtype_bytes=1,
        lookups_per_inference=spec.lookups_per_inference,
    )


@dataclass(frozen=True)
class CompressionReport:
    original_bytes: int
    compressed_bytes: int
    max_abs_error: float

    @property
    def ratio(self) -> float:
        return self.original_bytes / self.compressed_bytes


class QuantizedTable:
    """Symmetric per-row int8 quantisation of an embedding table."""

    LEVELS = 127  # symmetric int8: codes in [-127, 127]

    def __init__(self, spec: TableSpec, codes: np.ndarray, scales: np.ndarray):
        if codes.shape != (spec.rows, spec.dim):
            raise ValueError(
                f"codes shape {codes.shape} does not match spec "
                f"({spec.rows}, {spec.dim})"
            )
        if scales.shape != (spec.rows,):
            raise ValueError(
                f"scales shape {scales.shape} must be ({spec.rows},)"
            )
        if codes.dtype != np.int8:
            raise ValueError(f"codes must be int8, got {codes.dtype}")
        self.spec = spec
        self.codes = codes
        self.scales = scales.astype(np.float32)

    @classmethod
    def compress(cls, table: EmbeddingTable, block_rows: int = 65536) -> "QuantizedTable":
        """Quantise any table (block-wise, so virtual tables stream)."""
        spec = table.spec
        codes = np.empty((spec.rows, spec.dim), dtype=np.int8)
        scales = np.empty(spec.rows, dtype=np.float32)
        for start in range(0, spec.rows, block_rows):
            stop = min(start + block_rows, spec.rows)
            block = table.lookup(np.arange(start, stop, dtype=np.int64))
            maxabs = np.abs(block).max(axis=1)
            scale = np.where(maxabs > 0, maxabs / cls.LEVELS, 1.0)
            scales[start:stop] = scale
            codes[start:stop] = np.clip(
                np.rint(block / scale[:, None]), -cls.LEVELS, cls.LEVELS
            ).astype(np.int8)
        return cls(spec, codes, scales)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.spec.rows):
            raise IndexError(
                f"index out of range [0, {self.spec.rows})"
            )
        return (
            self.codes[idx].astype(np.float32) * self.scales[idx][:, None]
        )

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes + self.scales.nbytes)

    def report(self, reference: EmbeddingTable, sample: int = 2048) -> CompressionReport:
        """Compression ratio and worst sampled reconstruction error."""
        rows = min(sample, self.spec.rows)
        idx = np.linspace(0, self.spec.rows - 1, rows).astype(np.int64)
        err = np.abs(self.lookup(idx) - reference.lookup(idx)).max()
        return CompressionReport(
            original_bytes=self.spec.nbytes,
            compressed_bytes=self.nbytes,
            max_abs_error=float(err),
        )

    def error_bound(self) -> float:
        """Guaranteed |error| <= scale/2 per element, maximised over rows."""
        return float(self.scales.max()) / 2.0
