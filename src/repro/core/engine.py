"""MicroRec inference engine: plan, functional inference, timed estimates.

:class:`MicroRecEngine` is the library's top-level object.  Building one
runs Algorithm 1 over the model's tables and the target memory system;
the resulting engine exposes

* **functional inference** — embedding lookups routed through the planned
  data structures (merged Cartesian tables read with a *single* gather per
  product, exactly as the FPGA reads one DRAM row per product) plus the
  quantised top MLP, producing real CTR predictions; and
* **timed estimates** — latency/throughput/resource reports from the FPGA
  accelerator model under the same placement.

The functional path is what makes the reproduction testable: for any query
stream, the engine's predictions must match the plain CPU reference
bit-for-bit at fp32 (and within quantisation error at fixed point).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Placement
from repro.core.cartesian import CartesianTable, MergeGroup
from repro.core.planner import Plan, PlannerConfig, plan_tables
from repro.core.tables import EmbeddingTable, make_tables
from repro.cpu.baseline import CpuBaselineEngine
from repro.fpga.accelerator import (
    FpgaAcceleratorModel,
    FpgaConfig,
    FpgaPerformance,
)
from repro.fpga.resources import ResourceReport
from repro.memory.spec import MemorySystemSpec, u280_memory_system
from repro.memory.timing import MemoryTimingModel, default_timing_model
from repro.models.mlp import (
    PRECISIONS,
    FixedPointFormat,
    Mlp,
    check_precision,
)
from repro.models.spec import ModelSpec
from repro.models.workload import QueryBatch


class MicroRecEngine:
    """High-performance recommendation inference engine (simulated)."""

    def __init__(
        self,
        model: ModelSpec,
        plan: Plan,
        tables: dict[int, EmbeddingTable],
        mlp: Mlp,
        fpga_config: FpgaConfig,
        fixed_point: FixedPointFormat | None,
    ):
        self.model = model
        self.plan = plan
        self.tables = tables
        self.mlp = mlp
        self.fpga_config = fpga_config
        self.fixed_point = fixed_point
        self._mlp_device = mlp.quantized(fixed_point) if fixed_point else mlp
        # Functional merged tables: one CartesianTable per merged group.
        self._merged: dict[int, CartesianTable] = {}
        self._group_of: dict[int, MergeGroup] = {}
        for group in plan.placement.groups:
            for tid in group.member_ids:
                self._group_of[tid] = group
            if group.is_merged:
                ct = CartesianTable(group, [tables[t] for t in group.member_ids])
                for tid in group.member_ids:
                    self._merged[tid] = ct
        self.accelerator = FpgaAcceleratorModel(
            model, plan.placement, plan.timing, fpga_config
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        model: ModelSpec,
        memory: MemorySystemSpec | None = None,
        timing: MemoryTimingModel | None = None,
        planner_config: PlannerConfig | None = None,
        fpga_config: FpgaConfig | None = None,
        seed: int = 0,
        materialize_below_bytes: int = 0,
        mlp: Mlp | None = None,
        compress_tables: bool = False,
        precision: str | None = None,
        plan: Plan | None = None,
    ) -> "MicroRecEngine":
        """Plan the model onto the memory system and assemble the engine.

        ``memory`` defaults to the Alveo U280; ``fpga_config`` selects the
        precision (``fixed16`` default).  ``materialize_below_bytes``
        materialises small tables as arrays (virtual otherwise) — both
        representations are functionally identical.

        ``precision`` overrides the *functional* number format independently
        of the accelerator config: any key of
        :data:`repro.models.mlp.PRECISIONS`, including ``"fp32"`` (which the
        hardware model cannot time but the functional path can execute — it
        is the correctness reference).  ``plan`` injects a precomputed
        planner result, skipping Algorithm 1 — useful to build several
        precision variants of one placement without re-planning.

        ``compress_tables`` stores every embedding table as int8 with
        per-row scales (:mod:`repro.core.compression`): the planner sees
        the compressed footprints/burst lengths and the functional lookup
        path dequantises on the fly.  Compression materialises code
        arrays, so it is limited to models whose total embedding storage
        is under 256 MiB (use :meth:`repro.models.ModelSpec.scaled`).
        """
        memory = memory or u280_memory_system()
        timing = timing or default_timing_model(memory.axi)
        fpga_config = fpga_config or FpgaConfig()
        planner_specs = list(model.tables)
        if compress_tables:
            if model.total_embedding_bytes > 2**28:
                raise ValueError(
                    "compress_tables materialises int8 codes; "
                    f"{model.total_embedding_bytes / 2**20:.0f} MiB of "
                    "embeddings exceeds the 256 MiB limit — scale the model"
                )
            from repro.core.compression import compressed_spec

            planner_specs = [compressed_spec(t) for t in model.tables]
        if plan is None:
            plan = plan_tables(
                planner_specs, memory, timing=timing, config=planner_config
            )
        tables = make_tables(
            model.tables,
            seed=seed,
            materialize_below_bytes=materialize_below_bytes,
        )
        if compress_tables:
            from repro.core.compression import QuantizedTable

            tables = {
                tid: QuantizedTable.compress(t) for tid, t in tables.items()
            }
        if mlp is None:
            mlp = Mlp.random(model.layer_dims, seed=seed)
        if precision is None:
            precision = fpga_config.precision
        fmt = PRECISIONS[check_precision(precision)]
        return cls(model, plan, tables, mlp, fpga_config, fmt)

    # -- functional inference -------------------------------------------------

    @property
    def placement(self) -> Placement:
        return self.plan.placement

    def lookup_embeddings(self, batch: QueryBatch) -> np.ndarray:
        """Embedding layer through the planned data structures.

        Tables in the same merged group are fetched with one gather on the
        Cartesian table (one DRAM access per product on hardware); outputs
        are re-assembled in the model's table order so the MLP input layout
        matches the unmerged reference exactly.
        """
        n = batch.batch_size
        chunks: dict[int, np.ndarray] = {}
        done: set[int] = set()
        for t in self.model.tables:
            tid = t.table_id
            if tid in done:
                continue
            group = self._group_of[tid]
            if group.is_merged:
                ct = self._merged[tid]
                # Stack member indices (merged tables always have
                # lookups_per_inference == 1 members: planner rule).
                member_idx = np.stack(
                    [batch.indices[m][:, 0] for m in group.member_ids], axis=1
                )
                merged_rows = ct.merged_index(member_idx)
                vectors = ct.lookup(merged_rows)  # (n, sum dims)
                offset = 0
                for m in group.member_ids:
                    dim = self.tables[m].spec.dim
                    chunks[m] = vectors[:, offset : offset + dim]
                    offset += dim
                    done.add(m)
            else:
                idx = batch.indices[tid]
                flat = self.tables[tid].lookup(idx.reshape(-1))
                chunks[tid] = flat.reshape(n, -1)
                done.add(tid)
        parts = []
        if self.model.dense_dim:
            parts.append(batch.dense)
        parts.extend(chunks[t.table_id] for t in self.model.tables)
        return np.concatenate(parts, axis=1)

    def infer(self, batch: QueryBatch) -> np.ndarray:
        """Predict CTR per query through the planned engine."""
        feats = self.lookup_embeddings(batch)
        return self._mlp_device.forward(feats, fmt=self.fixed_point)

    def reference_engine(self) -> CpuBaselineEngine:
        """CPU reference over the *same* tables and fp32 MLP."""
        return CpuBaselineEngine(self.model, self.tables, self.mlp)

    # -- timed estimates -------------------------------------------------------

    def performance(self, lookup_rounds: int = 1) -> FpgaPerformance:
        return self.accelerator.performance(lookup_rounds=lookup_rounds)

    def resources(self) -> ResourceReport:
        return self.accelerator.resources()

    def summary(self) -> dict[str, object]:
        out = self.plan.summary()
        perf = self.performance()
        out.update(
            {
                "model": self.model.name,
                "precision": self.fpga_config.precision,
                "latency_us": perf.single_item_latency_us,
                "throughput_items_per_s": perf.throughput_items_per_s,
            }
        )
        return out
