"""Local-search refinement of placements (extension beyond the paper).

Algorithm 1's allocation step is greedy (LPT onto the least-loaded
channel).  LPT is a 4/3-approximation for makespan, so there is sometimes
headroom; this module adds a hill-climbing pass that repeatedly tries to

* **move** a group from the bottleneck DRAM channel to any other channel
  with capacity, or
* **swap** a bottleneck-channel group with a cheaper group elsewhere,

accepting a change only if the placement's lookup latency strictly
improves (capacity always respected).  The refinement never degrades a
placement — tested as an invariant — and closes part of the gap to the
brute-force oracle on adversarial instances.
"""

from __future__ import annotations

from repro.core.allocation import Placement
from repro.core.cartesian import MergeGroup
from repro.memory.timing import MemoryTimingModel


def _bank_cost(placement: Placement, timing: MemoryTimingModel) -> dict[int, float]:
    used = set(placement.bank_of.values())
    return {b: placement.bank_serial_ns(b, timing) for b in used}


def _group_cost(
    placement: Placement, group: MergeGroup, bank_id: int, timing: MemoryTimingModel
) -> float:
    spec = placement.group_spec(group)
    kind = placement.memory.bank(bank_id).kind
    return spec.lookups_per_inference * timing.access_ns(kind, spec.vector_bytes)


def _free_bytes(placement: Placement, bank_id: int) -> int:
    bank = placement.memory.bank(bank_id)
    used = sum(
        placement.group_spec(g).nbytes
        for g, b in placement.bank_of.items()
        if b == bank_id
    )
    return bank.capacity_bytes - used


def refine_placement(
    placement: Placement,
    timing: MemoryTimingModel,
    max_iterations: int = 200,
) -> Placement:
    """Hill-climb moves/swaps off the bottleneck channel.

    Returns a placement whose lookup latency is <= the input's; the input
    object is never mutated.
    """
    if max_iterations < 0:
        raise ValueError("max_iterations must be >= 0")
    current = Placement(
        memory=placement.memory,
        specs=dict(placement.specs),
        groups=placement.groups,
        bank_of=dict(placement.bank_of),
    )
    dram_ids = [b.bank_id for b in current.memory.dram_banks]

    for _ in range(max_iterations):
        costs = _bank_cost(current, timing)
        latency = max(costs.values(), default=0.0)
        if latency == 0.0:
            break
        bottleneck = max(costs, key=lambda b: costs[b])
        if bottleneck not in dram_ids:
            break  # on-chip bottlenecks are not re-packed here
        residents = [
            g for g, b in current.bank_of.items() if b == bottleneck
        ]
        improved = False

        # Try moving each resident to any other DRAM channel with space.
        for group in sorted(
            residents, key=lambda g: _group_cost(current, g, bottleneck, timing)
        ):
            gcost = _group_cost(current, group, bottleneck, timing)
            nbytes = current.group_spec(group).nbytes
            for target in dram_ids:
                if target == bottleneck:
                    continue
                target_cost = costs.get(target, 0.0)
                if target_cost + gcost >= latency:
                    continue  # would not beat the bottleneck
                if _free_bytes(current, target) < nbytes:
                    continue
                current.bank_of[group] = target
                improved = True
                break
            if improved:
                break
        if improved:
            continue

        # Try swapping a bottleneck group with a cheaper group elsewhere.
        for group in residents:
            gcost = _group_cost(current, group, bottleneck, timing)
            gbytes = current.group_spec(group).nbytes
            for other, obank in list(current.bank_of.items()):
                if obank == bottleneck or obank not in dram_ids:
                    continue
                ocost = _group_cost(current, other, obank, timing)
                if ocost >= gcost:
                    continue
                new_bottleneck = costs[bottleneck] - gcost + ocost
                new_other = costs.get(obank, 0.0) - ocost + gcost
                if max(new_bottleneck, new_other) >= latency:
                    continue
                obytes = current.group_spec(other).nbytes
                if (
                    _free_bytes(current, obank) + obytes < gbytes
                    or _free_bytes(current, bottleneck) + gbytes < obytes
                ):
                    continue
                current.bank_of[group] = obank
                current.bank_of[other] = bottleneck
                improved = True
                break
            if improved:
                break
        if not improved:
            break
    current.validate()
    return current
