"""Embedding tables: specs, materialised storage, and virtual storage.

Two executable representations back every :class:`TableSpec`:

* :class:`MaterializedTable` — a real ``numpy`` array, used for model-scale
  tests and the functional inference path;
* :class:`VirtualTable` — a storage-free table whose rows are derived
  deterministically from ``(seed, table_id, row, column)`` by an integer
  hash.  This lets the library operate *functionally* on industrial-scale
  specs (the paper's large model is 15.1 GB; its biggest tables have tens of
  millions of rows) without allocating them: any row can be generated on
  demand and two independent derivations of the same row agree bit-for-bit,
  which is exactly what the Cartesian-product equivalence tests need.

Both expose the same ``lookup`` interface and are interchangeable throughout
the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

#: Element width used by the paper's storage accounting (32-bit floats).
DEFAULT_DTYPE_BYTES = 4


@dataclass(frozen=True)
class TableSpec:
    """Static description of one embedding table."""

    table_id: int
    rows: int
    dim: int
    dtype_bytes: int = DEFAULT_DTYPE_BYTES
    lookups_per_inference: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(
                f"table {self.table_id}: rows must be positive, got {self.rows}"
            )
        if self.dim <= 0:
            raise ValueError(
                f"table {self.table_id}: dim must be positive, got {self.dim}"
            )
        if self.dtype_bytes <= 0:
            raise ValueError(
                f"table {self.table_id}: dtype_bytes must be positive, "
                f"got {self.dtype_bytes}"
            )
        if self.lookups_per_inference <= 0:
            raise ValueError(
                f"table {self.table_id}: lookups_per_inference must be "
                f"positive, got {self.lookups_per_inference}"
            )

    @property
    def nbytes(self) -> int:
        """Storage footprint of the full table."""
        return self.rows * self.dim * self.dtype_bytes

    @property
    def vector_bytes(self) -> int:
        """Payload of a single embedding vector."""
        return self.dim * self.dtype_bytes

    @property
    def size_key(self) -> tuple[int, int]:
        """Sort key ordering tables smallest-first, ties by id.

        The planner's heuristic rules are all phrased in terms of this
        smallest-to-largest order.
        """
        return (self.nbytes, self.table_id)

    def __repr__(self) -> str:
        return (
            f"TableSpec(id={self.table_id}, rows={self.rows}, dim={self.dim}, "
            f"bytes={self.nbytes})"
        )


@runtime_checkable
class EmbeddingTable(Protocol):
    """Anything that can be looked up like an embedding table."""

    spec: TableSpec

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows; returns float32 of shape ``(len(indices), dim)``."""
        ...


def _check_indices(indices: np.ndarray, rows: int, table_id: int) -> np.ndarray:
    indices = np.asarray(indices)
    if indices.ndim != 1:
        raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
    if indices.size and (indices.min() < 0 or indices.max() >= rows):
        raise IndexError(
            f"table {table_id}: index out of range [0, {rows}) "
            f"(got min={indices.min()}, max={indices.max()})"
        )
    return indices.astype(np.int64, copy=False)


class MaterializedTable:
    """An embedding table backed by an in-memory ``numpy`` array."""

    def __init__(self, spec: TableSpec, values: np.ndarray):
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (spec.rows, spec.dim):
            raise ValueError(
                f"table {spec.table_id}: values shape {values.shape} does not "
                f"match spec ({spec.rows}, {spec.dim})"
            )
        self.spec = spec
        self.values = values

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = _check_indices(indices, self.spec.rows, self.spec.table_id)
        return self.values[indices]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 -> well-mixed uint64."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        z = x
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


class VirtualTable:
    """A deterministic, storage-free embedding table.

    ``values[r, c]`` is a pure function of ``(seed, table_id, r, c)`` mapped
    to a float32 uniform in ``[-1, 1)``.  Rows are generated on demand, so a
    spec with hundreds of millions of rows costs nothing until looked up.
    """

    def __init__(self, spec: TableSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        # Fold seed and table id into one 64-bit stream selector.
        self._stream = np.uint64(
            (np.uint64(seed) << np.uint64(32))
            ^ _splitmix64(np.asarray([spec.table_id], dtype=np.uint64))[0]
        )

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = _check_indices(indices, self.spec.rows, self.spec.table_id)
        dim = self.spec.dim
        # One hash input per (row, col) cell: row * dim + col, offset by the
        # per-table stream so distinct tables decorrelate.
        cells = (
            indices[:, None].astype(np.uint64) * np.uint64(dim)
            + np.arange(dim, dtype=np.uint64)[None, :]
        )
        with np.errstate(over="ignore"):
            hashed = _splitmix64(cells + self._stream)
        # Top 24 bits -> uniform float32 in [0, 1) -> [-1, 1).
        frac = (hashed >> np.uint64(40)).astype(np.float32) / np.float32(2**24)
        return (frac * np.float32(2.0) - np.float32(1.0)).astype(np.float32)

    def materialize(self) -> MaterializedTable:
        """Realise the full table as an array (small specs only)."""
        all_rows = np.arange(self.spec.rows, dtype=np.int64)
        return MaterializedTable(self.spec, self.lookup(all_rows))


def make_tables(
    specs: Sequence[TableSpec],
    seed: int = 0,
    materialize_below_bytes: int = 0,
) -> dict[int, EmbeddingTable]:
    """Instantiate one table per spec, keyed by ``table_id``.

    Tables smaller than ``materialize_below_bytes`` are materialised from
    their virtual definition (so materialised and virtual views of the same
    spec hold identical values); larger tables stay virtual.
    """
    out: dict[int, EmbeddingTable] = {}
    for spec in specs:
        if spec.table_id in out:
            raise ValueError(f"duplicate table_id {spec.table_id}")
        virtual = VirtualTable(spec, seed=seed)
        if spec.nbytes < materialize_below_bytes:
            out[spec.table_id] = virtual.materialize()
        else:
            out[spec.table_id] = virtual
    return out
