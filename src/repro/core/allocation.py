"""Table-to-bank allocation and placement evaluation.

A :class:`Placement` is the planner's output: a partition of the model's
embedding tables into :class:`~repro.core.cartesian.MergeGroup`s (merged or
singleton) and an assignment of every group to one memory bank.  This module
evaluates placements — per-inference lookup latency, DRAM access rounds,
storage overhead — and provides the greedy allocator that implements the
paper's heuristic rule 4 (cache the smallest tables on chip, subject to
capacity and to on-chip lookups not becoming the bottleneck).

Latency semantics: banks are accessed concurrently, accesses to the same
bank serialise, and one inference reads one vector per group per lookup
round.  The per-inference embedding latency is therefore the maximum over
banks of the bank's serial read time — the quantity Algorithm 1 minimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.cartesian import MergeGroup, product_spec
from repro.core.tables import TableSpec
from repro.memory.banks import MemorySystemState
from repro.memory.spec import BankKind, MemorySystemSpec
from repro.memory.timing import MemoryTimingModel


class PlacementError(ValueError):
    """Raised when a set of groups cannot be placed in a memory system."""


@dataclass
class Placement:
    """A full assignment of merge groups to memory banks."""

    memory: MemorySystemSpec
    specs: Mapping[int, TableSpec]
    groups: tuple[MergeGroup, ...]
    bank_of: dict[MergeGroup, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        covered: list[int] = [tid for g in self.groups for tid in g.member_ids]
        if sorted(covered) != sorted(self.specs):
            raise PlacementError(
                "groups must partition the table set exactly once: "
                f"covered={sorted(covered)}, specs={sorted(self.specs)}"
            )
        missing = [g for g in self.groups if g not in self.bank_of]
        if missing:
            raise PlacementError(f"groups without a bank: {missing}")
        self._spec_cache: dict[MergeGroup, TableSpec] = {}

    # -- derived specs ----------------------------------------------------

    def group_spec(self, group: MergeGroup) -> TableSpec:
        spec = self._spec_cache.get(group)
        if spec is None:
            spec = self._spec_cache[group] = product_spec(group, self.specs)
        return spec

    def groups_in(self, *kinds: BankKind) -> list[MergeGroup]:
        return [
            g
            for g in self.groups
            if self.memory.bank(self.bank_of[g]).kind in kinds
        ]

    @property
    def merged_groups(self) -> list[MergeGroup]:
        return [g for g in self.groups if g.is_merged]

    @property
    def num_tables_after_merge(self) -> int:
        """Number of physical tables stored (paper Table 3, "Table Num")."""
        return len(self.groups)

    @property
    def num_tables_in_dram(self) -> int:
        return len(self.groups_in(BankKind.HBM, BankKind.DDR))

    # -- storage ----------------------------------------------------------

    @property
    def base_storage_bytes(self) -> int:
        """Storage of the original, unmerged tables."""
        return sum(s.nbytes for s in self.specs.values())

    @property
    def storage_bytes(self) -> int:
        """Storage actually placed (products included)."""
        return sum(self.group_spec(g).nbytes for g in self.groups)

    @property
    def storage_overhead_fraction(self) -> float:
        """Extra storage relative to the unmerged model (Table 3)."""
        return self.storage_bytes / self.base_storage_bytes - 1.0

    # -- timing -----------------------------------------------------------

    def to_state(self) -> MemorySystemState:
        """Materialise the occupancy state implied by this placement."""
        state = MemorySystemState(self.memory)
        for group, bank_id in self.bank_of.items():
            try:
                state.place(bank_id, group, self.group_spec(group).nbytes)
            except ValueError as exc:
                raise PlacementError(str(exc)) from exc
        return state

    def validate(self) -> None:
        """Raise :class:`PlacementError` if any bank is over capacity."""
        self.to_state()

    def bank_serial_ns(
        self,
        bank_id: int,
        timing: MemoryTimingModel,
        lookup_rounds: int = 1,
    ) -> float:
        """Serial time for one bank to serve its groups' lookups."""
        kind = self.memory.bank(bank_id).kind
        total = 0.0
        for group, bid in self.bank_of.items():
            if bid != bank_id:
                continue
            spec = self.group_spec(group)
            accesses = spec.lookups_per_inference * lookup_rounds
            total += accesses * timing.access_ns(kind, spec.vector_bytes)
        return total

    def lookup_latency_ns(
        self, timing: MemoryTimingModel, lookup_rounds: int = 1
    ) -> float:
        """Per-inference embedding lookup latency (max over banks).

        ``lookup_rounds`` scales every table's lookup count, modelling the
        multi-round DNN architectures of Figure 7.
        """
        used_banks = set(self.bank_of.values())
        return max(
            (self.bank_serial_ns(b, timing, lookup_rounds) for b in used_banks),
            default=0.0,
        )

    def dram_access_rounds(self, lookup_rounds: int = 1) -> int:
        """Accesses the busiest DRAM channel serialises (Table 3 rounds)."""
        per_bank: dict[int, int] = {}
        for group, bank_id in self.bank_of.items():
            if not self.memory.bank(bank_id).kind.is_dram:
                continue
            spec = self.group_spec(group)
            per_bank[bank_id] = (
                per_bank.get(bank_id, 0)
                + spec.lookups_per_inference * lookup_rounds
            )
        return max(per_bank.values(), default=0)

    def summary(self) -> dict[str, object]:
        return {
            "tables": self.num_tables_after_merge,
            "tables_in_dram": self.num_tables_in_dram,
            "merged_groups": len(self.merged_groups),
            "dram_rounds": self.dram_access_rounds(),
            "storage_bytes": self.storage_bytes,
            "storage_overhead": self.storage_overhead_fraction,
        }


def allocate_to_banks(
    groups: Sequence[MergeGroup],
    specs: Mapping[int, TableSpec],
    memory: MemorySystemSpec,
    timing: MemoryTimingModel,
) -> Placement:
    """Assign groups to banks: heuristic rule 4 + least-loaded DRAM packing.

    Rule 4 caches the smallest tables on chip.  The number cached is not
    fixed a priori: we sweep the count ``k`` of smallest groups placed
    on-chip, allocate the remainder to DRAM channels greedily
    (longest-processing-time onto the currently least-loaded channel with
    capacity), and keep the ``k`` with the lowest overall lookup latency.
    This satisfies both of the paper's constraints by construction — a
    ``k`` whose co-located on-chip lookups exceed the off-chip bottleneck
    simply loses the sweep.

    Raises :class:`PlacementError` if even ``k = 0`` cannot be placed (some
    group exceeds every DRAM bank's remaining capacity).
    """
    # Every per-group quantity is computed exactly once up front; the k-sweep
    # below only shuffles precomputed numbers, keeping the allocator O(N)
    # per candidate count and the whole planner at the paper's O(N^2).
    gspec = {g: product_spec(g, specs) for g in groups}
    cost = {
        g: s.lookups_per_inference * timing.dram_access_ns(s.vector_bytes)
        for g, s in gspec.items()
    }
    onchip_cost = {
        g: s.lookups_per_inference
        * timing.access_ns(BankKind.ONCHIP, s.vector_bytes)
        for g, s in gspec.items()
    }
    sorted_groups = sorted(
        groups, key=lambda g: (gspec[g].nbytes, g.member_ids)
    )
    by_cost_desc = sorted(
        groups, key=lambda g: (-cost[g], g.member_ids)
    )

    best_bank_of: dict[MergeGroup, int] | None = None
    best_score: tuple[float, float] | None = None
    onchip_banks = memory.onchip_banks
    # The sweep over the on-chip table count k stops as soon as the k
    # smallest groups no longer fit the *total* on-chip capacity — a valid
    # upper bound (first-fit can only fail earlier).
    onchip_capacity = sum(b.capacity_bytes for b in onchip_banks)
    max_k, prefix = 0, 0
    for group in sorted_groups:
        prefix += gspec[group].nbytes
        if prefix > onchip_capacity:
            break
        max_k += 1

    for k in range(max_k + 1):
        onchip_part = sorted_groups[:k]
        onchip_set = set(onchip_part)
        bank_of: dict[MergeGroup, int] = {}

        # --- on-chip: first-fit into the least-occupied on-chip bank.
        onchip_load = {b.bank_id: 0 for b in onchip_banks}
        onchip_free = {b.bank_id: b.capacity_bytes for b in onchip_banks}
        onchip_busy = {b.bank_id: 0.0 for b in onchip_banks}
        feasible = True
        for group in onchip_part:
            nbytes = gspec[group].nbytes
            candidates = [
                bid for bid in onchip_free if onchip_free[bid] >= nbytes
            ]
            if not candidates:
                feasible = False
                break
            bid = min(candidates, key=lambda b: (onchip_load[b], b))
            bank_of[group] = bid
            onchip_free[bid] -= nbytes
            onchip_load[bid] += 1
            onchip_busy[bid] += onchip_cost[group]
        if not feasible:
            break  # larger k only adds bigger tables; stop the sweep

        # --- DRAM: LPT greedy onto least-loaded channel with capacity.
        dram_banks = memory.dram_banks
        if len(onchip_set) < len(sorted_groups) and not dram_banks:
            continue
        dram_free = {b.bank_id: b.capacity_bytes for b in dram_banks}
        dram_busy = {b.bank_id: 0.0 for b in dram_banks}
        ok = True
        # Most expensive groups first (LPT balance), pre-sorted once.
        for group in by_cost_desc:
            if group in onchip_set:
                continue
            spec = gspec[group]
            candidates = [
                bid for bid in dram_free if dram_free[bid] >= spec.nbytes
            ]
            if not candidates:
                ok = False
                break
            bid = min(candidates, key=lambda b: (dram_busy[b], b))
            bank_of[group] = bid
            dram_free[bid] -= spec.nbytes
            dram_busy[bid] += cost[group]
        if not ok:
            if k == 0:
                raise PlacementError(
                    "allocation failed: a group exceeds every DRAM bank's "
                    "capacity even with nothing cached on-chip"
                )
            continue

        # Latency = slowest bank; storage is k-independent, so ties are
        # broken towards lower aggregate DRAM busy time, i.e. towards
        # caching more tables on chip.
        latency = max(
            max(dram_busy.values(), default=0.0),
            max(onchip_busy.values(), default=0.0),
        )
        score = (latency, sum(dram_busy.values()))
        if best_score is None or score < best_score:
            best_bank_of, best_score = bank_of, score

    if best_bank_of is None:
        raise PlacementError("no feasible allocation found")
    placement = Placement(
        memory=memory,
        specs=dict(specs),
        groups=tuple(sorted_groups),
        bank_of=best_bank_of,
    )
    placement._spec_cache.update(gspec)
    return placement
