"""Heuristic table-combination and allocation search (paper Algorithm 1).

The planner decides (a) which tables to merge via Cartesian products and
(b) where every resulting table lives in the hybrid memory system, so as to
minimise per-inference embedding lookup latency with storage as tie-break.
Brute force is infeasible (section 3.4.1), so the search applies the paper's
four heuristic rules:

1. only the ``n`` *smallest* tables are Cartesian candidates (products of
   large tables explode storage);
2. products join *pairs* of tables (three-way products spend small tables
   too fast);
3. within the candidate set, the smallest table is paired with the largest,
   the second-smallest with the second-largest, and so on;
4. the smallest resulting tables are cached on chip, subject to capacity
   and to co-located on-chip lookups not exceeding the off-chip bottleneck
   (implemented as a sweep inside
   :func:`~repro.core.allocation.allocate_to_banks`).

The outer loop tries every candidate count ``n`` from 0 to N and keeps the
best allocation, giving the paper's ``O(N^2)`` total complexity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.allocation import (
    Placement,
    PlacementError,
    allocate_to_banks,
)
from repro.core.cartesian import MergeGroup, product_spec
from repro.core.tables import TableSpec
from repro.memory.spec import MemorySystemSpec
from repro.memory.timing import MemoryTimingModel, default_timing_model

MIB = 1024 * 1024


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of the heuristic search.

    Parameters
    ----------
    max_candidate_rows:
        Rule 1 cutoff: a table is a Cartesian candidate only if it has at
        most this many rows.  Production models mix ~100-row tables with
        hundred-million-row tables (section 2.2); only the former are worth
        merging.
    max_product_bytes:
        A pair is merged only if the product stays under this size, keeping
        the storage overhead "marginal" (paper: 1.9-3.2 % of the model).
    enable_cartesian:
        Setting this to ``False`` restricts the search to allocation only —
        the "HBM-only" configuration of Tables 3 and 4.
    """

    max_candidate_rows: int = 100_000
    max_product_bytes: int = 256 * MIB
    enable_cartesian: bool = True


@dataclass
class Plan:
    """Result of the planner: a placement plus search metadata."""

    placement: Placement
    timing: MemoryTimingModel
    candidate_count: int  # the winning n (0 = no Cartesian products)
    evaluated: int = 0  # allocations evaluated during the search
    config: PlannerConfig = field(default_factory=PlannerConfig)

    @property
    def lookup_latency_ns(self) -> float:
        return self.placement.lookup_latency_ns(self.timing)

    @property
    def dram_access_rounds(self) -> int:
        return self.placement.dram_access_rounds()

    @property
    def merge_groups(self) -> list[MergeGroup]:
        return self.placement.merged_groups

    def summary(self) -> dict[str, object]:
        out = self.placement.summary()
        out.update(
            {
                "lookup_latency_ns": self.lookup_latency_ns,
                "candidate_count": self.candidate_count,
                "evaluated": self.evaluated,
            }
        )
        return out


def pair_candidates(
    candidates: Sequence[TableSpec],
) -> list[tuple[int, ...]]:
    """Apply rules 2 and 3: pair smallest with largest among candidates.

    Candidates are taken smallest-first; the pairing walks inward from both
    ends, so the tiniest table absorbs the biggest candidate.  An odd
    middle element stays unpaired.
    """
    ordered = sorted(candidates, key=lambda s: s.size_key)
    pairs: list[tuple[int, ...]] = []
    lo, hi = 0, len(ordered) - 1
    while lo < hi:
        pairs.append((ordered[lo].table_id, ordered[hi].table_id))
        lo += 1
        hi -= 1
    if lo == hi:
        pairs.append((ordered[lo].table_id,))
    return pairs


def _groups_for_candidate_count(
    specs_sorted: Sequence[TableSpec],
    n: int,
    all_ids: set[int],
    specs: Mapping[int, TableSpec],
    config: PlannerConfig,
) -> tuple[MergeGroup, ...]:
    """Build the merge-group partition for a given candidate count ``n``."""
    candidates = specs_sorted[:n]
    groups: list[MergeGroup] = []
    consumed: set[int] = set()
    for ids in pair_candidates(candidates):
        group = MergeGroup(ids)
        if len(ids) == 2:
            if product_spec(group, specs).nbytes > config.max_product_bytes:
                # Oversized product: keep the two tables separate.
                groups.extend(MergeGroup((tid,)) for tid in ids)
            else:
                groups.append(group)
        else:
            groups.append(group)
        consumed.update(ids)
    groups.extend(
        MergeGroup((tid,)) for tid in sorted(all_ids - consumed)
    )
    return tuple(groups)


def plan_tables(
    specs: Sequence[TableSpec],
    memory: MemorySystemSpec,
    timing: MemoryTimingModel | None = None,
    config: PlannerConfig | None = None,
) -> Plan:
    """Run Algorithm 1 and return the best plan found.

    Iterates the Cartesian candidate count ``n`` over ``0..N`` (``n = 0``
    is the no-merging baseline, so the heuristic never does worse than
    plain allocation), builds the rule-2/3 pairing for each ``n``, allocates
    with rule 4, and keeps the placement with the lowest lookup latency,
    breaking ties by total storage.
    """
    if timing is None:
        timing = default_timing_model(memory.axi)
    if config is None:
        config = PlannerConfig()
    by_id = {s.table_id: s for s in specs}
    if len(by_id) != len(specs):
        raise ValueError("table_id values must be unique")
    all_ids = set(by_id)
    # Rule 1: only small tables are candidates, smallest first.
    eligible = sorted(
        (s for s in specs if s.rows <= config.max_candidate_rows),
        key=lambda s: s.size_key,
    )
    max_n = len(eligible) if config.enable_cartesian else 0

    best: Plan | None = None
    best_score: tuple[float, int] | None = None
    evaluated = 0
    for n in range(max_n + 1):
        if n == 1:
            continue  # a single candidate has nothing to pair with
        groups = _groups_for_candidate_count(
            eligible, n, all_ids, by_id, config
        )
        try:
            placement = allocate_to_banks(groups, by_id, memory, timing)
        except PlacementError:
            continue
        evaluated += 1
        score = (
            placement.lookup_latency_ns(timing),
            placement.storage_bytes,
        )
        if best_score is None or score < best_score:
            best_score = score
            best = Plan(
                placement=placement,
                timing=timing,
                candidate_count=n,
                config=config,
            )
    if best is None:
        raise PlacementError(
            "planner found no feasible allocation for any candidate count"
        )
    best.evaluated = evaluated
    return best
