"""Serving/SLA experiment: tail latency vs offered load (extension).

Quantifies section 1's motivation and section 4.1's design claim with a
queueing simulation: the batched CPU engine meets a 30 ms p99 SLA only up
to a fraction of its raw batch throughput (batch assembly wait + batched
execution), while the item-by-item MicroRec pipeline holds microsecond
tails until it saturates near its steady-state throughput.
"""

from __future__ import annotations

from repro.cpu.costmodel import CpuCostModel
from repro.experiments.common import accelerator, model
from repro.experiments.report import ExperimentResult
from repro.serving.queueing import BatchedServerSim, PipelineServerSim
from repro.serving.sla import DEFAULT_SLA_MS, sla_capacity_sweep

RATES = (1_000, 10_000, 30_000, 60_000, 120_000, 240_000, 280_000)


def run() -> ExperimentResult:
    m = model("small")
    cpu = CpuCostModel(m)
    perf = accelerator("small", "fixed16").performance()
    batched = BatchedServerSim(
        cpu.end_to_end_latency_ms, batch_size=256, batch_timeout_ms=5.0
    )
    pipelined = PipelineServerSim(perf.single_item_latency_us, perf.ii_ns)
    reports = sla_capacity_sweep(batched, pipelined, RATES)

    rows: list[dict[str, object]] = []
    for report in reports.values():
        rows.extend(report.rows())
    rows.append(
        {
            "engine": "sla-capacity",
            "rate_per_s": None,
            "cpu_capacity_per_s": reports["cpu"].sla_capacity_per_s,
            "fpga_capacity_per_s": reports["fpga"].sla_capacity_per_s,
        }
    )
    return ExperimentResult(
        experiment_id="serving_sla",
        title=f"Tail latency vs load (p99 SLA = {DEFAULT_SLA_MS:.0f} ms, "
        "small model, fixed16)",
        columns=[
            "engine",
            "rate_per_s",
            "p50_ms",
            "p99_ms",
            "meets_sla",
            "cpu_capacity_per_s",
            "fpga_capacity_per_s",
        ],
        rows=rows,
        notes=[
            "CPU: batch 256 + 5 ms assembly timeout; FPGA: item-by-item "
            "pipeline (section 4.1)",
        ],
    )
