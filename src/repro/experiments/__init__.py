"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.report import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
