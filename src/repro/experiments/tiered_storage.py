"""Tiered storage experiment: cold caches are a serving event (extension).

The embedding working set of a production recommender outgrows the
accelerator's fast memory ("tens of GBs", section 1), so rows live in a
HBM → DDR → host hierarchy with hot-row caching
(:mod:`repro.memory.tiers`).  Steady state is kind: Zipf traffic keeps
the hot tier's hit rate high and the effective lookup close to HBM
speed.  The danger is *transition*: when the autoscaler reacts to a
flash crowd, the nodes it adds arrive with empty caches and serve every
lookup from the slow tiers until their hot set fills.

This experiment replays a flash-crowd trace through an elastic fleet
whose serving surface carries the tier hierarchy.  The timeline shows
the spike forcing a scale-up, the fresh nodes' windows with
``cold_nodes > 0`` paying a visibly worse p99 than the warm steady
state, and the tail relaxing back once the new caches absorb the hot
set — the cold-start transient the tests assert deterministically.
"""

from __future__ import annotations

from repro.autoscale import simulate_autoscale
from repro.experiments.report import ExperimentResult
from repro.memory.tiers import scaled_tier_hierarchy
from repro.runtime import deploy_model
from repro.serving.arrivals import flash_crowd_trace
from repro.serving.popularity import PopularityModel
from repro.serving.sla import DEFAULT_SLA_MS

MODEL = "small"
BACKEND = "fpga"
POLICY = "lru"
#: Hot tier holds 5% of the working set — small enough that cache state
#: visibly moves the tail, large enough that Zipf traffic keeps it warm.
HOT_FRACTION = 0.05
#: Base load in nodes' worth of one engine's capacity; the spike is 3x.
BASE_NODES_OF_LOAD = 2.0
SPIKE_FACTOR = 3.0
WINDOWS = 16
CONTROL_INTERVAL_S = 0.05
WARM_ACCESSES = 2048
SIM_QUERIES = 512
SEED = 0


def build_surface():
    """A fresh tier-attached session (never the shared cached one).

    :func:`repro.experiments.common.session` memoises sessions across
    experiments; attaching a tier hierarchy mutates serving behaviour,
    so this experiment deploys its own instance.
    """
    surface = deploy_model(MODEL, backend=BACKEND)
    rows = sum(t.rows for t in surface.model.tables)
    hierarchy = scaled_tier_hierarchy(
        rows,
        policy=POLICY,
        hot_fraction=HOT_FRACTION,
        warm_accesses=WARM_ACCESSES,
        sim_queries=SIM_QUERIES,
    )
    return surface.attach_tiers(
        hierarchy, popularity=PopularityModel(rows=rows), seed=SEED
    )


def run() -> ExperimentResult:
    surface = build_surface()
    per_node = surface.perf().throughput_items_per_s
    memory = surface.perf().memory
    trace = flash_crowd_trace(
        BASE_NODES_OF_LOAD * per_node,
        WINDOWS * CONTROL_INTERVAL_S,
        spike_rate_per_s=SPIKE_FACTOR * BASE_NODES_OF_LOAD * per_node,
    )
    result = simulate_autoscale(
        surface,
        trace,
        slo_ms=DEFAULT_SLA_MS,
        windows=WINDOWS,
        seed=SEED,
        compare_static=False,
    )
    rows = [
        {
            "window": w.index,
            "rate_per_s": w.offered_rate_per_s,
            "nodes": w.nodes,
            "cold_nodes": w.cold_nodes,
            "p99_ms": w.p99_ms,
            "sla_attainment": w.sla_attainment,
        }
        for w in result.windows
    ]
    return ExperimentResult(
        experiment_id="tiered_storage",
        title=(
            f"Tiered storage under a flash crowd ({MODEL}/{BACKEND}, "
            f"{POLICY} hot tier at {HOT_FRACTION:.0%} of the working "
            f"set; steady-state hit rate {memory.hit_rate:.1%})"
        ),
        columns=[
            "window",
            "rate_per_s",
            "nodes",
            "cold_nodes",
            "p99_ms",
            "sla_attainment",
        ],
        rows=rows,
        notes=[
            f"steady state: hit rate {memory.hit_rate:.1%}, effective "
            f"lookup {memory.effective_lookup_ns:,.0f} ns vs "
            f"{memory.hot_lookup_ns:,.0f} ns all-HBM "
            f"({memory.lookups_per_query} lookups/query)",
            "cold_nodes counts fleet members still filling their hot "
            "tier; their windows pay the slow-tier tail until the hot "
            "set is absorbed",
            "scale-ups ride a one-window provisioning delay, then one "
            "or more cold windows — the SLA planner sizes against warm "
            "steady state, so the transient is the autoscaler's bill",
        ],
    )
