"""Shared builders for the experiment modules.

Plans for the two production models are cached because several experiments
(Tables 2, 3, 4, Figure 7) reuse them.
"""

from __future__ import annotations

import functools

from repro.core.planner import Plan, PlannerConfig, plan_tables
from repro.cpu.costmodel import CpuCostModel
from repro.experiments.calibration import (
    default_memory,
    default_timing,
    fpga_config,
)
from repro.fpga.accelerator import FpgaAcceleratorModel
from repro.models.spec import ModelSpec, production_large, production_small

MODELS = {"small": production_small, "large": production_large}


@functools.lru_cache(maxsize=None)
def model(name: str) -> ModelSpec:
    try:
        return MODELS[name]()
    except KeyError:
        raise KeyError(
            f"unknown production model {name!r}; expected one of {sorted(MODELS)}"
        ) from None


@functools.lru_cache(maxsize=None)
def plan(name: str, cartesian: bool = True) -> Plan:
    """Planner output for a production model, with or without merging."""
    return plan_tables(
        model(name).tables,
        default_memory(),
        timing=default_timing(),
        config=PlannerConfig(enable_cartesian=cartesian),
    )


def accelerator(
    name: str, precision: str = "fixed16", cartesian: bool = True
) -> FpgaAcceleratorModel:
    p = plan(name, cartesian)
    return FpgaAcceleratorModel(
        model(name), p.placement, p.timing, fpga_config(precision)
    )


@functools.lru_cache(maxsize=None)
def cpu_model(name: str) -> CpuCostModel:
    return CpuCostModel(model(name))
