"""Shared builders for the experiment modules.

Everything here routes through the unified runtime API
(:mod:`repro.runtime`): experiments deploy named backends and read
sessions, instead of wiring engine classes by hand.  Plans and sessions
for the two production models are cached because several experiments
(Tables 2, 3, 4, Figure 7) reuse them.
"""

from __future__ import annotations

import functools

from repro.core.planner import Plan, PlannerConfig, plan_tables
from repro.cpu.costmodel import CpuCostModel
from repro.experiments.calibration import (
    default_memory,
    default_timing,
    fpga_config,
)
from repro.fpga.accelerator import FpgaAcceleratorModel
from repro.models.spec import MODEL_FACTORIES, ModelSpec
from repro.runtime import Session, get_backend

MODELS = dict(MODEL_FACTORIES)


@functools.lru_cache(maxsize=None)
def model(name: str) -> ModelSpec:
    try:
        return MODELS[name]()
    except KeyError:
        raise KeyError(
            f"unknown production model {name!r}; expected one of {sorted(MODELS)}"
        ) from None


@functools.lru_cache(maxsize=None)
def plan(name: str, cartesian: bool = True) -> Plan:
    """Planner output for a production model, with or without merging."""
    return plan_tables(
        model(name).tables,
        default_memory(),
        timing=default_timing(),
        config=PlannerConfig(enable_cartesian=cartesian),
    )


@functools.lru_cache(maxsize=None)
def session(
    name: str,
    backend: str = "fpga",
    precision: str | None = None,
    cartesian: bool = True,
) -> Session:
    """A cached runtime session for a production model on one backend.

    ``precision=None`` keeps each backend's own default (fixed16 on the
    FPGA backends, fp32 on the CPU baseline — the paper's pairing).  The
    ``fpga`` backend reuses the cached :func:`plan` (one Algorithm 1 run
    per model/merging setting, shared across precisions); other backends
    build from their own defaults.
    """
    builder = get_backend(backend)
    knobs: dict[str, object] = {"precision": precision}
    if backend == "fpga":
        knobs["plan"] = plan(name, cartesian)
        if precision not in (None, "fp32"):
            knobs["fpga_config"] = fpga_config(precision)
    elif not cartesian:
        raise ValueError(
            f"cartesian=False only applies to the fpga backend, not {backend!r}"
        )
    return builder.build(model(name), **knobs)


def accelerator(
    name: str, precision: str = "fixed16", cartesian: bool = True
) -> FpgaAcceleratorModel:
    return session(name, "fpga", precision, cartesian).engine.accelerator


@functools.lru_cache(maxsize=None)
def cpu_model(name: str) -> CpuCostModel:
    return session(name, "cpu").cost
