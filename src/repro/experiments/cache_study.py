"""Hot-row caching study (extension): traffic skew vs cache effectiveness.

RecNMP-style memory-side caching exploits the Zipf skew of recommendation
traffic.  This study sweeps the skew exponent and the cache capacity over
one large table and reports LRU hit rates and the resulting effective
lookup latency (hits served at on-chip speed, misses at DRAM speed) —
quantifying when caching competes with, and when it complements, the
paper's structural approach (which needs no skew at all).
"""

from __future__ import annotations

from repro.experiments.calibration import default_timing
from repro.experiments.report import ExperimentResult
from repro.memory.cache import effective_lookup_ns, zipf_hit_rate

ROWS = 100_000
VECTOR_BYTES = 32 * 4
ALPHAS = (0.0, 0.8, 1.05, 1.3)
CAPACITIES = (256, 1024, 4096)


def run() -> ExperimentResult:
    timing = default_timing()
    miss_ns = timing.dram_access_ns(VECTOR_BYTES)
    hit_ns = timing.onchip_access_ns(VECTOR_BYTES)
    rows = []
    for alpha in ALPHAS:
        for capacity in CAPACITIES:
            hit_rate = zipf_hit_rate(
                rows=ROWS, capacity_rows=capacity, alpha=alpha, accesses=20_000
            )
            rows.append(
                {
                    "zipf_alpha": alpha,
                    "cache_rows": capacity,
                    "hit_rate": hit_rate,
                    "effective_ns": effective_lookup_ns(
                        hit_rate, hit_ns, miss_ns
                    ),
                    "uncached_ns": miss_ns,
                }
            )
    return ExperimentResult(
        experiment_id="cache_study",
        title="LRU hot-row caching vs traffic skew (100k-row table, dim 32)",
        columns=[
            "zipf_alpha",
            "cache_rows",
            "hit_rate",
            "effective_ns",
            "uncached_ns",
        ],
        rows=rows,
        notes=[
            "caching needs skew; Cartesian merging helps at any skew "
            "(structural, not statistical)",
        ],
    )
