"""Hot-row caching study (extension): traffic skew vs cache effectiveness.

RecNMP-style memory-side caching exploits the Zipf skew of recommendation
traffic.  This study sweeps the skew exponent, the cache capacity, and the
registered cache policies (:mod:`repro.memory.tiers`) over one large
table and reports warm hit rates and the resulting effective lookup
latency (hits served at on-chip speed, misses at DRAM speed) —
quantifying when caching competes with, and when it complements, the
paper's structural approach (which needs no skew at all).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.calibration import default_timing
from repro.experiments.report import ExperimentResult
from repro.memory.tiers import TierHierarchy, TierSpec, available_cache_policies
from repro.serving.lab import lab_seed
from repro.serving.popularity import PopularityModel

ROWS = 100_000
VECTOR_BYTES = 32 * 4
ALPHAS = (0.0, 0.8, 1.05, 1.3)
CAPACITIES = (256, 1024, 4096)
WARM_ACCESSES = 20_000
SCORED_ACCESSES = 20_000


def run() -> ExperimentResult:
    timing = default_timing()
    miss_ns = timing.dram_access_ns(VECTOR_BYTES)
    hit_ns = timing.onchip_access_ns(VECTOR_BYTES)
    rows = []
    for policy in available_cache_policies():
        for alpha in ALPHAS:
            popularity = PopularityModel(rows=ROWS, alpha=alpha)
            for capacity in CAPACITIES:
                hierarchy = TierHierarchy(
                    tiers=(
                        TierSpec("onchip", capacity * VECTOR_BYTES, hit_ns),
                        TierSpec("dram", ROWS * VECTOR_BYTES, miss_ns),
                    ),
                    row_bytes=VECTOR_BYTES,
                    policy=policy,
                )
                rng = np.random.default_rng(
                    lab_seed(0, "cache_study", policy, alpha, capacity)
                )
                warm = popularity.sample(rng, WARM_ACCESSES)
                keys = popularity.sample(rng, SCORED_ACCESSES)
                stats = hierarchy.simulate(keys, warmup_keys=warm)
                rows.append(
                    {
                        "policy": policy,
                        "zipf_alpha": alpha,
                        "cache_rows": capacity,
                        "hit_rate": stats.hit_rate,
                        "effective_ns": stats.effective_ns,
                        "uncached_ns": miss_ns,
                    }
                )
    return ExperimentResult(
        experiment_id="cache_study",
        title="Hot-row caching vs traffic skew (100k-row table, dim 32)",
        columns=[
            "policy",
            "zipf_alpha",
            "cache_rows",
            "hit_rate",
            "effective_ns",
            "uncached_ns",
        ],
        rows=rows,
        notes=[
            "caching needs skew; Cartesian merging helps at any skew "
            "(structural, not statistical)",
            "policies ride the registry: plugins appear in this sweep "
            "automatically",
        ],
    )
