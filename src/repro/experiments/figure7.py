"""Figure 7: end-to-end throughput as lookup rounds increase.

Alternative DNN architectures retrieve several vectors per table.  Because
the lookup stage overlaps with DNN computation in the pipeline, MicroRec
tolerates extra rounds for free until the lookup stage's II exceeds the
GEMM bottleneck; after that, throughput decays with the total DRAM access
latency.  The paper reports the small model tolerates 6 rounds and the
large model 4 at fixed-16.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import accelerator
from repro.experiments.report import ExperimentResult

MAX_ROUNDS = 10


def tolerated_rounds(throughputs: dict[int, float], tolerance: float = 0.995) -> int:
    """Largest round count whose throughput is within ``tolerance`` of r=1."""
    base = throughputs[1]
    best = 1
    for r in sorted(throughputs):
        if throughputs[r] >= tolerance * base:
            best = r
    return best


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        acc = accelerator(name, "fixed16")
        throughputs = {
            r: acc.performance(lookup_rounds=r).throughput_items_per_s
            for r in range(1, MAX_ROUNDS + 1)
        }
        tol = tolerated_rounds(throughputs)
        for r in range(1, MAX_ROUNDS + 1):
            rows.append(
                {
                    "model": name,
                    "rounds": r,
                    "throughput_items": throughputs[r],
                    "relative": throughputs[r] / throughputs[1],
                    "tolerated_rounds": tol,
                    "paper_tolerated": paper_data.FIGURE7_TOLERATED_ROUNDS[name],
                }
            )
    return ExperimentResult(
        experiment_id="figure7",
        title="End-to-end throughput vs rounds of lookups (fixed16)",
        columns=[
            "model",
            "rounds",
            "throughput_items",
            "relative",
            "tolerated_rounds",
            "paper_tolerated",
        ],
        rows=rows,
        notes=[
            "flat region = lookup stage hidden behind GEMM bottleneck; "
            "decay = memory-bound regime",
        ],
    )
