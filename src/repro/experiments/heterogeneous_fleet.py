"""Heterogeneous fleet experiment: routed tiers vs homogeneous fleets.

The cluster-level counterpart of
:mod:`repro.experiments.latency_under_load` (extension): one FPGA
primary tier with GPU and CPU overflow tiers is served the same traffic
under every registered routing policy, and then compared against
homogeneous fleets of each tier at the *same node count* — the
deployment question a fleet operator actually faces.  The paper's
comparative story composed: the batched commodity tiers cannot hold the
tail at this load with three nodes, the routed mix can, and ``sla-aware``
keeps the spill to the overflow tiers only as large as the SLO forces.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cluster, available_policies
from repro.experiments.common import session
from repro.experiments.report import ExperimentResult
from repro.serving.arrivals import poisson_arrivals
from repro.serving.lab import lab_seed
from repro.serving.sla import DEFAULT_SLA_MS

TIERS = ("fpga", "gpu", "cpu")
#: Offered load as a fraction of the cluster's summed capacity — past
#: the primary tier's own capacity, so routing genuinely decides.
UTILISATION = 0.85
DURATION_S = 0.1
SEED = 0


def run() -> ExperimentResult:
    sessions = [session("small", backend) for backend in TIERS]
    nodes = len(sessions)
    capacity = sum(
        s.perf().throughput_items_per_s for s in sessions
    )
    rate = UTILISATION * capacity
    rng = np.random.default_rng(
        lab_seed(SEED, "heterogeneous_fleet", "poisson")
    )
    arrivals = poisson_arrivals(rng, rate, DURATION_S)

    rows: list[dict[str, object]] = []
    for router in available_policies():
        cluster = Cluster(sessions, router, slo_ms=DEFAULT_SLA_MS)
        result = cluster.serve(arrivals)
        rows.append(
            {
                "fleet": cluster.backend,
                "router": router,
                "p50_ms": result.p50_ms,
                "p99_ms": result.p99_ms,
                "sla_attainment": result.sla_attainment(DEFAULT_SLA_MS),
                "fpga_share": result.tier_share("fpga"),
                "spill": result.spill_fraction("fpga"),
                "usd_per_million": result.usd_per_million_queries,
            }
        )
    for backend, sess in zip(TIERS, sessions):
        homo = Cluster([sess] * nodes, "round-robin", slo_ms=DEFAULT_SLA_MS)
        result = homo.serve(arrivals)
        rows.append(
            {
                "fleet": f"{backend} x{nodes}",
                "router": "round-robin",
                "p50_ms": result.p50_ms,
                "p99_ms": result.p99_ms,
                "sla_attainment": result.sla_attainment(DEFAULT_SLA_MS),
                "usd_per_million": result.usd_per_million_queries,
            }
        )
    return ExperimentResult(
        experiment_id="heterogeneous_fleet",
        title=(
            f"Heterogeneous fleet: {'+'.join(TIERS)} under every router vs "
            f"homogeneous {nodes}-node fleets "
            f"({rate:,.0f} queries/s, p99 SLO {DEFAULT_SLA_MS:.0f} ms)"
        ),
        columns=[
            "fleet",
            "router",
            "p50_ms",
            "p99_ms",
            "sla_attainment",
            "fpga_share",
            "spill",
            "usd_per_million",
        ],
        rows=rows,
        notes=[
            "identical arrival stream for every fleet; node count fixed "
            f"at {nodes}",
            "spill = fraction of queries routed off the fpga primary tier",
            "$/M amortises the fleet's hourly cost over achieved "
            "throughput in this window",
        ],
    )
