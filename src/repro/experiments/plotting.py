"""ASCII plotting for figures (no plotting dependencies available).

The paper's figures are line/bar charts; the harness renders their data
as monospace charts so `python -m repro.experiments` shows the *shapes*
(the flat-then-decay of Figure 7, the hockey-stick of the SLA sweep)
directly in a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class Series:
    """One labelled line of (x, y) points."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )
        if not self.x:
            raise ValueError(f"series {self.label!r} is empty")


_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = False,
) -> str:
    """Render line series as a monospace scatter chart.

    Values are mapped onto a ``width x height`` grid; each series uses its
    own marker.  ``log_x`` spaces the x axis logarithmically (batch-size
    and load sweeps span decades).
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")

    def tx(v: float) -> float:
        if not log_x:
            return v
        if v <= 0:
            raise ValueError("log_x requires positive x values")
        return math.log10(v)

    xs = [tx(v) for s in series for v in s.x]
    ys = [v for s in series for v in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, s in enumerate(series):
        marker = _MARKERS[k % len(_MARKERS)]
        for xv, yv in zip(s.x, s.y):
            col = int(round((tx(xv) - x_lo) / x_span * (width - 1)))
            row = int(round((yv - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    pad = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        label = y_hi_label if i == 0 else y_lo_label if i == height - 1 else ""
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_lo_label = f"{(10 ** x_lo) if log_x else x_lo:.4g}"
    x_hi_label = f"{(10 ** x_hi) if log_x else x_hi:.4g}"
    gap = width - len(x_lo_label) - len(x_hi_label)
    lines.append(" " * (pad + 2) + x_lo_label + " " * max(gap, 1) + x_hi_label)
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {s.label}" for k, s in enumerate(series)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Mapping[str, object]],
    group_by: str,
    x_key: str,
    y_key: str,
) -> list[Series]:
    """Split experiment rows into one series per ``group_by`` value."""
    groups: dict[object, tuple[list[float], list[float]]] = {}
    for row in rows:
        if x_key not in row or y_key not in row:
            continue
        x, y = row[x_key], row[y_key]
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            continue
        xs, ys = groups.setdefault(row.get(group_by), ([], []))
        xs.append(float(x))
        ys.append(float(y))
    return [
        Series(label=str(key), x=tuple(xs), y=tuple(ys))
        for key, (xs, ys) in groups.items()
        if xs
    ]
