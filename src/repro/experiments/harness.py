"""Run every experiment and render the full paper-vs-measured report.

``python -m repro.experiments`` prints all regenerated tables/figures.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    cache_study,
    compression,
    cost,
    elastic_fleet,
    figure3,
    figure7,
    heterogeneous_fleet,
    latency_under_load,
    quantization,
    queuing,
    related_work,
    serving_sla,
    sharded_fleet,
    table2,
    table3,
    table4,
    table5,
    table6,
    tiered_storage,
    trace_scale,
)
from repro.experiments.report import ExperimentResult, render_table

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "figure3": figure3.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure7": figure7.run,
    "table6": table6.run,
    "cost": cost.run,
    "queuing": queuing.run,
    "serving_sla": serving_sla.run,
    "latency_under_load": latency_under_load.run,
    "heterogeneous_fleet": heterogeneous_fleet.run,
    "elastic_fleet": elastic_fleet.run,
    "sharded_fleet": sharded_fleet.run,
    "quantization": quantization.run,
    "related_work": related_work.run,
    "compression": compression.run,
    "cache_study": cache_study.run,
    "tiered_storage": tiered_storage.run,
    "trace_scale": trace_scale.run,
}


def run_all() -> dict[str, ExperimentResult]:
    return {name: fn() for name, fn in EXPERIMENTS.items()}


#: Figures that get an ASCII chart in addition to their data table:
#: experiment -> (group_by, x_key, y_key, log_x, title).
CHARTS = {
    "figure7": (
        "model",
        "rounds",
        "relative",
        False,
        "Figure 7: relative throughput vs lookup rounds",
    ),
    "serving_sla": (
        "engine",
        "rate_per_s",
        "p99_ms",
        True,
        "Serving: p99 latency (ms) vs offered load (queries/s)",
    ),
    "tiered_storage": (
        "nodes",
        "window",
        "p99_ms",
        False,
        "Tiered storage: p99 (ms) vs control window (series = fleet size)",
    ),
}


def render_one(result: ExperimentResult) -> str:
    """Data table plus, for figure-style experiments, an ASCII chart."""
    from repro.experiments.plotting import ascii_chart, series_from_rows

    text = render_table(result)
    chart_spec = CHARTS.get(result.experiment_id)
    if chart_spec:
        group_by, x_key, y_key, log_x, title = chart_spec
        series = series_from_rows(result.rows, group_by, x_key, y_key)
        if series:
            text += "\n\n" + ascii_chart(series, title=title, log_x=log_x)
    return text


def render_all(results: dict[str, ExperimentResult] | None = None) -> str:
    results = results or run_all()
    return "\n\n".join(render_one(r) for r in results.values())


def main() -> None:
    print(render_all())


if __name__ == "__main__":
    main()
