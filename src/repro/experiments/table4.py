"""Table 4: embedding layer performance, CPU vs FPGA.

The CPU baseline's embedding-layer latency across batch sizes against the
FPGA lookup latency in the two hardware configurations — HBM allocation
only, and HBM + Cartesian products.  Speedups compare CPU per-item time
against the FPGA per-item lookup latency, as in the paper.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import cpu_model, plan
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        paper = paper_data.TABLE4[name]
        cm = cpu_model(name)
        hbm_ns = plan(name, cartesian=False).lookup_latency_ns
        cart_ns = plan(name, cartesian=True).lookup_latency_ns
        for batch in paper_data.CPU_BATCHES:
            cpu_ms = cm.embedding_latency_ms(batch)
            per_item_ns = cpu_ms * 1e6 / batch
            rows.append(
                {
                    "model": name,
                    "batch": batch,
                    "cpu_ms": cpu_ms,
                    "paper_cpu_ms": paper["cpu_latency_ms"][batch],
                    "speedup_hbm": per_item_ns / hbm_ns,
                    "speedup_hbm_cartesian": per_item_ns / cart_ns,
                }
            )
        rows.append(
            {
                "model": name,
                "batch": "FPGA",
                "fpga_hbm_ns": hbm_ns,
                "paper_hbm_ns": paper["fpga_hbm_ms"] * 1e6,
                "fpga_cartesian_ns": cart_ns,
                "paper_cartesian_ns": paper["fpga_hbm_cartesian_ms"] * 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Embedding layer: CPU baseline vs FPGA (HBM, HBM+Cartesian)",
        columns=[
            "model",
            "batch",
            "cpu_ms",
            "paper_cpu_ms",
            "speedup_hbm",
            "speedup_hbm_cartesian",
            "fpga_hbm_ns",
            "paper_hbm_ns",
            "fpga_cartesian_ns",
            "paper_cartesian_ns",
        ],
        rows=rows,
        notes=[
            "paper speedups at B=2048: HBM 8.17x/11.07x, "
            "HBM+Cartesian 13.82x/14.70x",
        ],
    )


def speedups_at(result: ExperimentResult, batch: int) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for r in result.rows:
        if r.get("batch") == batch:
            out[str(r["model"])] = {
                "hbm": float(r["speedup_hbm"]),
                "cartesian": float(r["speedup_hbm_cartesian"]),
            }
    return out
