"""Quantisation-accuracy experiment (extension).

The paper serves at 16/32-bit fixed point and reports only speed; this
experiment measures what those formats cost in ranking quality.  A CTR
model is trained on a synthetic click task (hidden-teacher labels), then
evaluated at fp32 and both fixed-point formats.  Expected outcome,
asserted by tests: fixed32 is lossless and fixed16 costs < 0.005 AUC —
supporting the paper's implicit claim that fixed16 serving is safe.

The model is production-*shaped* (long-tailed tables, ReLU MLP + sigmoid
head) but sized so the experiment runs in seconds.
"""

from __future__ import annotations

from repro.core.tables import TableSpec
from repro.experiments.report import ExperimentResult
from repro.models.mlp import FIXED16, FIXED32
from repro.models.spec import ModelSpec
from repro.models.training import train_and_evaluate

FORMATS = {"fixed16": FIXED16, "fixed32": FIXED32}


def study_model(seed: int = 0) -> ModelSpec:
    """A small production-shaped CTR model for the accuracy study."""
    rows = [100, 200, 400, 800, 1600, 3200, 6400, 12800]
    tables = tuple(
        TableSpec(i, rows=r, dim=8) for i, r in enumerate(rows)
    )
    return ModelSpec(
        name="quantization-study",
        tables=tables,
        hidden=(128, 64, 32),
        dense_dim=0,
    )


def run() -> ExperimentResult:
    report = train_and_evaluate(
        study_model(),
        FORMATS,
        train_batches=150,
        batch_size=512,
        test_size=8192,
        seed=3,
        lr=0.2,
    )
    rows = [
        {
            "precision": "fp32",
            "auc": report.auc_fp32,
            "auc_drop_vs_fp32": 0.0,
        }
    ]
    rows.extend(
        {
            "precision": name,
            "auc": report.auc_by_format[name],
            "auc_drop_vs_fp32": report.auc_drop(name),
        }
        for name in FORMATS
    )
    return ExperimentResult(
        experiment_id="quantization",
        title="Ranking quality at the paper's serving precisions",
        columns=["precision", "auc", "auc_drop_vs_fp32"],
        rows=rows,
        notes=[
            "trained with NumPy SGD on a synthetic hidden-teacher click task",
        ],
    )
