"""Compression ablation (extension): int8 tables under the planner.

Applies int8 per-row quantisation to every table of both production models
and replans.  Findings (asserted by the bench):

* storage shrinks 3-4x;
* compression attacks a *different* term than merging: the burst shortens
  (and 4x-smaller tables stretch the on-chip budget, which on the small
  model reclaims the second DRAM round all by itself), while the fixed
  initiation cost per access — Cartesian merging's target — is untouched;
* once tables are compressed, the planner sometimes no longer needs
  products at all: capacity pressure, not access count, was binding.
"""

from __future__ import annotations

from repro.core.compression import compressed_spec
from repro.core.planner import PlannerConfig, plan_tables
from repro.experiments.calibration import default_memory, default_timing
from repro.experiments.common import model
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    memory = default_memory()
    timing = default_timing()
    rows = []
    for name in ("small", "large"):
        m = model(name)
        for compressed in (False, True):
            specs = [
                compressed_spec(t) if compressed else t for t in m.tables
            ]
            for cartesian in (False, True):
                plan = plan_tables(
                    specs,
                    memory,
                    timing,
                    PlannerConfig(enable_cartesian=cartesian),
                )
                rows.append(
                    {
                        "model": name,
                        "tables": "int8" if compressed else "fp32",
                        "cartesian": "with" if cartesian else "without",
                        "storage_gb": plan.placement.storage_bytes / 1e9,
                        "dram_rounds": plan.dram_access_rounds,
                        "lookup_ns": plan.lookup_latency_ns,
                    }
                )
    return ExperimentResult(
        experiment_id="compression",
        title="Int8 table compression under the planner",
        columns=[
            "model",
            "tables",
            "cartesian",
            "storage_gb",
            "dram_rounds",
            "lookup_ns",
        ],
        rows=rows,
        notes=[
            "compression shortens bursts and stretches the on-chip budget; "
            "merging removes accesses — different levers",
        ],
    )
