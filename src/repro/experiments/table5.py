"""Table 5: embedding lookups on the Facebook DLRM-RMC2 benchmark.

The benchmark's embedding-dominated model class has 8-12 small tables,
each looked up 4 times (32-48 lookups per item).  Tables fit single HBM
banks and are replicated so lookups spread across all 32 HBM channels:
8 tables need one round of DRAM access, 12 tables need two — which is the
whole structure of the paper's speedup range (72.4x down to 18.7x against
the published DeepRecSys CPU baseline at batch 256).
"""

from __future__ import annotations

from repro.cpu.costmodel import facebook_rmc2_embedding_us_per_item
from repro.experiments import paper_data
from repro.experiments.calibration import default_memory, default_timing
from repro.experiments.report import ExperimentResult
from repro.fpga.lookup import replicated_lookup_ns
from repro.memory.spec import BankKind

TABLE_COUNTS = (8, 12)
DIMS = (4, 8, 16, 32, 64)
DTYPE_BYTES = 4


def run() -> ExperimentResult:
    memory = default_memory()
    timing = default_timing()
    hbm_channels = len(memory.banks_of(BankKind.HBM))
    rows = []
    for num_tables in TABLE_COUNTS:
        lookups = num_tables * paper_data.TABLE5_LOOKUPS_PER_TABLE
        baseline_us = facebook_rmc2_embedding_us_per_item(num_tables)
        for dim in DIMS:
            ours_ns = replicated_lookup_ns(
                total_lookups=lookups,
                vector_bytes=dim * DTYPE_BYTES,
                channels=hbm_channels,
                timing=timing,
            )
            paper = paper_data.TABLE5[(num_tables, dim)]
            rows.append(
                {
                    "tables": num_tables,
                    "dim": dim,
                    "lookups": lookups,
                    "lookup_ns": ours_ns,
                    "paper_lookup_ns": paper["lookup_ns"],
                    "speedup": baseline_us * 1e3 / ours_ns,
                    "paper_speedup": paper["speedup"],
                }
            )
    return ExperimentResult(
        experiment_id="table5",
        title="DLRM-RMC2 embedding lookups vs Facebook baseline",
        columns=[
            "tables",
            "dim",
            "lookups",
            "lookup_ns",
            "paper_lookup_ns",
            "speedup",
            "paper_speedup",
        ],
        rows=rows,
        notes=[
            "baseline: DeepRecSys 2-socket Broadwell, batch 256 "
            "(published data, modelled at ~24-29 us/item)",
        ],
    )
