"""Sharded fleet experiment: one model too large for any single node.

The cluster extensions so far replicate one whole model per node, so the
largest servable model is bounded by one node's DRAM.  This experiment
(extension) builds a synthetic multi-terabyte model — every table bigger
than an FPGA card's DRAM, the whole model bigger than *any* node family's
DRAM — and shows the bound falling: replication is infeasible on every
backend by memory alone, while the sharding planner
(:mod:`repro.distplan`) places the model across a heterogeneous
FPGA+NMP cluster at real per-node capacities and the fan-out/gather
serve still meets the p99 SLO.  Sessions are row-capped as usual
(``max_rows``), but the plan and its capacity validation run on the
full-scale spec — feasibility is judged at web scale even on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ReplicaSpec
from repro.distplan import deploy_sharded, node_capacity_bytes
from repro.experiments.report import ExperimentResult
from repro.models.spec import ModelSpec
from repro.core.tables import TableSpec
from repro.serving.arrivals import poisson_arrivals
from repro.serving.lab import lab_seed

GIB = 1024**3
#: 16 tables x 500M rows x dim 64 x 4 B = 128 GB per table, ~2.05 TB
#: total: each table overflows an FPGA card, the model overflows every
#: node family (the paper's section 2.2 tables, two orders further out).
N_TABLES = 16
ROWS_PER_TABLE = 500_000_000
DIM = 64
#: The sharded mix: FPGA cards carry the latency story, NMP nodes the
#: capacity story.  CPU nodes are deliberately absent — a fan-out waits
#: for its *slowest* owner, and the CPU baseline's ~29 ms would own the
#: tail outright.
FPGA_NODES = 32
NMP_NODES = 8
#: Offered load as a fraction of the fan-out's lockstep capacity (the
#: slowest owner's throughput).
UTILISATION = 0.5
DURATION_S = 0.1
#: p99 SLO: the NMP tier answers in ~21 ms, so "tens of milliseconds"
#: (section 1) with queueing headroom.
SLO_MS = 40.0
MAX_ROWS = 256
SEED = 0

REPLICATION_BACKENDS = ("fpga", "nmp", "cpu")


def webscale_model() -> ModelSpec:
    """The synthetic multi-TB model (full-scale spec, never built whole)."""
    return ModelSpec(
        name="webscale-2tb",
        tables=tuple(
            TableSpec(table_id=i, rows=ROWS_PER_TABLE, dim=DIM)
            for i in range(N_TABLES)
        ),
    )


def run() -> ExperimentResult:
    spec = webscale_model()
    total_bytes = spec.total_embedding_bytes

    rows: list[dict[str, object]] = []
    for backend in REPLICATION_BACKENDS:
        capacity = node_capacity_bytes(backend)
        feasible = total_bytes <= capacity
        assert not feasible, (
            f"replication on {backend} unexpectedly feasible: the model "
            f"must exceed every single node's DRAM for this experiment"
        )
        rows.append(
            {
                "fleet": f"replicate on {backend}",
                "node_gb": capacity / GIB,
                "model_gb": total_bytes / GIB,
                "feasible": "no",
            }
        )

    cluster = deploy_sharded(
        spec,
        [
            ReplicaSpec(backend="fpga", count=FPGA_NODES),
            ReplicaSpec(backend="nmp", count=NMP_NODES),
        ],
        slo_ms=SLO_MS,
        max_rows=MAX_ROWS,
        seed=SEED,
    )
    rate = UTILISATION * cluster.perf().throughput_items_per_s
    rng = np.random.default_rng(lab_seed(SEED, "sharded_fleet", "poisson"))
    arrivals = poisson_arrivals(rng, rate, DURATION_S)
    result = cluster.serve(arrivals)
    attainment = result.sla_attainment(SLO_MS)
    assert result.p99_ms <= SLO_MS and attainment >= 0.99, (
        f"sharded fleet missed the SLO it exists to meet: "
        f"p99 {result.p99_ms:.3f} ms vs {SLO_MS} ms, "
        f"SLA {attainment:.1%}"
    )
    rows.append(
        {
            "fleet": f"sharded fpga x{FPGA_NODES} + nmp x{NMP_NODES}",
            "model_gb": total_bytes / GIB,
            "feasible": "yes",
            "strategy": cluster.plan.strategy,
            "fanout": cluster.plan.fanout,
            "peak_node_util": max(cluster.plan.node_utilisation()),
            "p50_ms": result.p50_ms,
            "p99_ms": result.p99_ms,
            "sla_attainment": attainment,
            "usd_per_million": result.usd_per_million_queries,
        }
    )
    return ExperimentResult(
        experiment_id="sharded_fleet",
        title=(
            f"Sharded fleet: {total_bytes / 1e12:.2f} TB model on "
            f"{FPGA_NODES} FPGA + {NMP_NODES} NMP nodes "
            f"({rate:,.0f} queries/s, p99 SLO {SLO_MS:.0f} ms)"
        ),
        columns=[
            "fleet",
            "feasible",
            "node_gb",
            "model_gb",
            "strategy",
            "fanout",
            "peak_node_util",
            "p50_ms",
            "p99_ms",
            "sla_attainment",
            "usd_per_million",
        ],
        rows=rows,
        notes=[
            "feasibility judged on the full-scale spec against each "
            "node family's DRAM; serving sessions are row-capped "
            f"(max_rows={MAX_ROWS})",
            "fan-out latency = slowest shard owner + one gather step "
            "per additional owner; capacity is the lockstep minimum",
            "every replication baseline is infeasible by memory alone "
            "- no latency column to compare against",
        ],
    )
