"""Table 6 (appendix): FPGA resource utilisation and clock frequency.

The structural resource model (per-PE costs, per-channel FIFOs, URAM weight
buffers) composed for both models and precisions, against the paper's
post-synthesis totals.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import accelerator
from repro.experiments.report import ExperimentResult

RESOURCES = ("bram", "dsp", "ff", "lut", "uram")


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        for precision in ("fixed16", "fixed32"):
            report = accelerator(name, precision).resources()
            paper = paper_data.TABLE6[(name, precision)]
            util = report.utilisation()
            row: dict[str, object] = {
                "model": name,
                "precision": precision,
                "freq_mhz": report.frequency_mhz,
                "paper_freq": paper["freq_mhz"],
            }
            for res in RESOURCES:
                row[res] = getattr(report, res)
                row[f"paper_{res}"] = paper[res]
                row[f"{res}_util"] = util[res]
            rows.append(row)
    columns = ["model", "precision", "freq_mhz", "paper_freq"]
    for res in RESOURCES:
        columns += [res, f"paper_{res}", f"{res}_util"]
    return ExperimentResult(
        experiment_id="table6",
        title="FPGA frequency and resource utilisation (Alveo U280)",
        columns=columns,
        rows=rows,
        notes=["utilisation fractions are against XCU280 device totals"],
    )
