"""Table 2: end-to-end recommendation inference, CPU vs MicroRec.

For each production model: the CPU baseline's batch latency / throughput at
B in {1, 64, 256, 512, 1024, 2048}, the FPGA engine at fixed-16 and
fixed-32, and the speedups.  As in the paper, speedups compare per-item
time: CPU batch latency / B against FPGA *batch latency* / B (pipeline fill
included), while the headline microsecond figure is the FPGA's single-item
latency through the empty pipeline.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import accelerator, cpu_model
from repro.experiments.report import ExperimentResult

PRECISIONS = ("fixed16", "fixed32")
PRECISION_LABEL = {"fixed16": "fp16", "fixed32": "fp32"}


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        cm = cpu_model(name)
        paper = paper_data.TABLE2[name]
        for batch in paper_data.CPU_BATCHES:
            lat = cm.end_to_end_latency_ms(batch)
            rows.append(
                {
                    "model": name,
                    "engine": f"CPU B={batch}",
                    "latency_ms": lat,
                    "paper_latency_ms": paper["cpu_latency_ms"][batch],
                    "throughput_items": cm.throughput_items_per_s(batch),
                    "throughput_gops": cm.throughput_gops(batch),
                }
            )
        for precision in PRECISIONS:
            perf = accelerator(name, precision).performance()
            label = PRECISION_LABEL[precision]
            cpu_per_item_ms = cm.end_to_end_latency_ms(2048) / 2048
            fpga_per_item_ms = perf.batch_latency_ms(2048) / 2048
            rows.append(
                {
                    "model": name,
                    "engine": f"FPGA {label}",
                    "latency_ms": perf.single_item_latency_us / 1e3,
                    "paper_latency_ms": paper["fpga_latency_ms"][precision],
                    "throughput_items": perf.throughput_items_per_s,
                    "throughput_gops": perf.throughput_gops,
                    "speedup_vs_cpu_b2048": cpu_per_item_ms / fpga_per_item_ms,
                    "paper_speedup": paper["speedup_b2048"][precision],
                }
            )
    return ExperimentResult(
        experiment_id="table2",
        title="End-to-end inference: CPU baseline vs MicroRec",
        columns=[
            "model",
            "engine",
            "latency_ms",
            "paper_latency_ms",
            "throughput_items",
            "throughput_gops",
            "speedup_vs_cpu_b2048",
            "paper_speedup",
        ],
        rows=rows,
        notes=[
            "FPGA latency is a single item through the empty pipeline;",
            "speedups compare per-item batch time at B=2048, as in the paper.",
        ],
    )


def speedup_range(result: ExperimentResult) -> tuple[float, float]:
    """Min/max measured end-to-end speedup across models and precisions."""
    values = [
        r["speedup_vs_cpu_b2048"]
        for r in result.rows
        if "speedup_vs_cpu_b2048" in r
    ]
    return min(values), max(values)
