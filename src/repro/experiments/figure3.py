"""Figure 3: the embedding layer is expensive during CPU inference.

The paper motivates the whole system with this figure: at the small batch
sizes latency SLAs force, the embedding layer (lookups + the 37 operator
types around them) dominates CPU inference time on both production models.
We regenerate the embedding-vs-total split at batch 1 and 64.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import cpu_model
from repro.experiments.report import ExperimentResult

BATCHES = (1, 64)


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        cm = cpu_model(name)
        for batch in BATCHES:
            emb = cm.embedding_latency_ms(batch)
            total = cm.end_to_end_latency_ms(batch)
            rows.append(
                {
                    "model": name,
                    "batch": batch,
                    "embedding_ms": emb,
                    "total_ms": total,
                    "embedding_share": emb / total,
                    "paper_share": paper_data.FIGURE3[name][batch],
                }
            )
    return ExperimentResult(
        experiment_id="figure3",
        title="Embedding layer share of CPU inference latency",
        columns=[
            "model",
            "batch",
            "embedding_ms",
            "total_ms",
            "embedding_share",
            "paper_share",
        ],
        rows=rows,
        notes=[
            "paper_share derived from Tables 2 and 4 (embedding / end-to-end)",
        ],
    )
