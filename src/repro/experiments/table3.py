"""Table 3: benefit and overhead of Cartesian products.

For each production model, the planner runs twice — allocation only
("Without Cartesian", the HBM-only configuration) and with the full
Algorithm 1 — and we report exactly the paper's columns: resulting table
count, tables left in DRAM, DRAM access rounds, relative storage, and
relative lookup latency.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import plan
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    rows = []
    for name in ("small", "large"):
        paper = paper_data.TABLE3[name]
        base = plan(name, cartesian=False)
        cart = plan(name, cartesian=True)
        base_latency = base.lookup_latency_ns
        base_storage = base.placement.storage_bytes
        for label, p in (("without", base), ("with", cart)):
            paper_row = paper[label]
            rows.append(
                {
                    "model": name,
                    "cartesian": label,
                    "tables": p.placement.num_tables_after_merge,
                    "paper_tables": paper_row["tables"],
                    "tables_in_dram": p.placement.num_tables_in_dram,
                    "paper_in_dram": paper_row["tables_in_dram"],
                    "dram_rounds": p.dram_access_rounds,
                    "paper_rounds": paper_row["rounds"],
                    "storage_rel": p.placement.storage_bytes / base_storage,
                    "paper_storage_rel": paper_row["storage"],
                    "latency_ns": p.lookup_latency_ns,
                    "latency_rel": p.lookup_latency_ns / base_latency,
                    "paper_latency_rel": paper_row["latency"],
                }
            )
    return ExperimentResult(
        experiment_id="table3",
        title="Cartesian products: benefit and overhead",
        columns=[
            "model",
            "cartesian",
            "tables",
            "paper_tables",
            "tables_in_dram",
            "paper_in_dram",
            "dram_rounds",
            "paper_rounds",
            "storage_rel",
            "paper_storage_rel",
            "latency_ns",
            "latency_rel",
            "paper_latency_rel",
        ],
        rows=rows,
        notes=[
            "paper absolute lookup latencies: small 774->458 ns, "
            "large 2260->1630 ns",
        ],
    )
