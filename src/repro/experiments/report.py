"""Plain-text rendering of experiment results.

Every experiment module returns an :class:`ExperimentResult`; this module
renders it as a monospace table (the same rows/series the paper reports,
with paper-reported values side by side where available).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass
class ExperimentResult:
    """Rows of one regenerated table or figure."""

    experiment_id: str  # e.g. "table2"
    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, object]]
    notes: list[str] = field(default_factory=list)

    def column_values(self, column: str) -> list[object]:
        return [r.get(column) for r in self.rows]


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Monospace table with a title banner and footnotes."""
    cols = list(result.columns)
    cells = [[_fmt(r.get(c)) for c in cols] for r in result.rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        " | ".join(c.ljust(w) for c, w in zip(cols, widths)),
        sep,
    ]
    lines.extend(
        " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in cells
    )
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
