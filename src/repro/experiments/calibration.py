"""Calibration constants: where every simulator parameter comes from.

The reproduction's rule is *calibrate once, reuse everywhere*: each
constant below is fit against exactly one published measurement (its
"provenance") and then held fixed across all experiments, so every other
table/figure is a genuine model output.

+--------------------------------+---------------------------+------------------------------------------+
| constant                       | value                     | provenance                               |
+--------------------------------+---------------------------+------------------------------------------+
| DRAM initiation latency        | 313 ns                    | Table 5, 8-table row intercept           |
| AXI stream rate                | 32 bit @ 190 MHz          | Table 5, 8-table row slope (~5.3 ns/elem)|
| on-chip latency fraction       | 1/3                       | section 3.2.2 (stated)                   |
| MAC lanes per PE               | 10 (fixed16) / 5 (fixed32)| Table 2 FPGA throughput                  |
| clock frequency                | 120 / 135-140 MHz         | Table 6 (measured timing closure)        |
| stage overhead cycles          | 64                        | Table 2 single-item latency              |
| PE resource costs              | see repro.fpga.resources  | appendix HLS estimates + Table 6 totals  |
| CPU t_op (operator call)       | 1.49 us                   | Table 4, B=1 embedding latency           |
| CPU ops_per_table              | 37                        | section 1 (stated)                       |
| CPU t_lookup                   | 98 ns                     | Table 4, B=2048 embedding slope          |
| CPU batch assembly             | 25 us x sqrt(B)           | Table 4 mid-batch curvature              |
| CPU peak GEMM rate             | 589 GFLOP/s               | derived from E5-2686 v4 spec             |
| CPU GEMM efficiency curve      | 0.5 (B+1.5)/(B+160)       | Table 2 MLP residuals (two-point fit)    |
| Facebook baseline embedding    | ~24 us/item               | Table 5 speedup x latency invariant      |
+--------------------------------+---------------------------+------------------------------------------+

This module re-exports the default objects so experiments construct their
simulators from one place.
"""

from __future__ import annotations

from repro.cpu.costmodel import CpuCostParams
from repro.fpga.accelerator import FpgaConfig
from repro.memory.spec import MemorySystemSpec, u280_memory_system
from repro.memory.timing import MemoryTimingModel, default_timing_model

#: Batch size the paper selects for the CPU baseline comparisons ("larger
#: batch sizes can break inference latency constraints").
BASELINE_BATCH = 2048


def default_memory() -> MemorySystemSpec:
    return u280_memory_system()


def default_timing() -> MemoryTimingModel:
    return default_timing_model(default_memory().axi)


def default_cpu_params() -> CpuCostParams:
    return CpuCostParams()


def fpga_config(precision: str) -> FpgaConfig:
    return FpgaConfig(precision=precision)
