"""Elastic fleet experiment: autoscaling policies vs the peak-sized fleet.

The control-plane counterpart of
:mod:`repro.experiments.heterogeneous_fleet` (extension): the bundled
diurnal trace — the day/night swing production recommendation traffic
actually has — is replayed through the batched GPU tier under every
registered scaler policy (:mod:`repro.autoscale`), against the null
hypothesis a fleet operator starts from: a *static* fleet sized for the
trace's peak by :func:`repro.deploy.capacity.plan_fleet_sla`.  The
static fleet holds the 30 ms p99 SLO around the clock but pays for peak
capacity at 4 a.m.; a look-ahead scaler rides the sinusoid, keeping
SLA attainment at or above 99% for strictly fewer dollars — the
elastic-beats-static demonstration the tests assert deterministically.
"""

from __future__ import annotations

from repro.autoscale import available_scalers, compare_policies
from repro.experiments.common import session
from repro.experiments.report import ExperimentResult
from repro.serving.arrivals import diurnal_trace
from repro.serving.sla import DEFAULT_SLA_MS

BACKEND = "gpu"
#: Mean offered load in nodes' worth of one engine's capacity — big
#: enough that fleet sizes move visibly, small enough to stay legible.
MEAN_NODES_OF_LOAD = 8.0
#: Day/night swing of the bundled diurnal trace: peak 1.6x the mean,
#: trough 0.4x — the static fleet must buy the 1.6x.
AMPLITUDE = 0.6
WINDOWS = 24
CONTROL_INTERVAL_S = 0.05
SEED = 0


def run() -> ExperimentResult:
    surface = session("small", BACKEND)
    per_node = surface.perf().throughput_items_per_s
    trace = diurnal_trace(
        MEAN_NODES_OF_LOAD * per_node,
        WINDOWS * CONTROL_INTERVAL_S,
        amplitude=AMPLITUDE,
    )

    rows: list[dict[str, object]] = []
    results = compare_policies(
        surface,
        trace,
        available_scalers(),
        slo_ms=DEFAULT_SLA_MS,
        windows=WINDOWS,
        seed=SEED,
    )
    static = next(iter(results.values())).static
    for policy, result in results.items():
        rows.append(
            {
                "policy": policy,
                "mean_nodes": result.mean_nodes,
                "peak_nodes": result.peak_nodes,
                "resizes": result.scaling_actions,
                "sla_attainment": result.sla_attainment,
                "usd_per_hour": result.usd_per_hour,
                "usd_per_million": result.usd_per_million_queries,
                "usd_vs_static": (
                    result.usd_total / static.usd_total
                    if static is not None
                    else None
                ),
            }
        )
    if static is not None:
        rows.append(
            {
                "policy": "static-peak (plan_fleet_sla)",
                "mean_nodes": float(static.nodes),
                "peak_nodes": static.nodes,
                "resizes": 0,
                "sla_attainment": static.sla_attainment,
                "usd_per_hour": static.usd_per_hour,
                "usd_per_million": static.usd_per_million_queries,
                "usd_vs_static": 1.0,
            }
        )
    return ExperimentResult(
        experiment_id="elastic_fleet",
        title=(
            f"Elastic {BACKEND} fleet on the diurnal trace "
            f"({trace.mean_rate:,.0f} queries/s mean, "
            f"{trace.peak_rate:,.0f} peak; p99 SLO "
            f"{DEFAULT_SLA_MS:.0f} ms, {WINDOWS} x "
            f"{CONTROL_INTERVAL_S:g}s control windows)"
        ),
        columns=[
            "policy",
            "mean_nodes",
            "peak_nodes",
            "resizes",
            "sla_attainment",
            "usd_per_hour",
            "usd_per_million",
            "usd_vs_static",
        ],
        rows=rows,
        notes=[
            "identical trace, SLO, and seed for every policy; scale-ups "
            "ride a one-window provisioning delay",
            "static-peak = fixed fleet sized for the trace's peak rate "
            "by plan_fleet_sla (what a peak-provisioned operator buys)",
            "usd_vs_static = horizon spend relative to that static "
            "fleet; < 1 means elasticity saved money",
        ],
    )
