"""Related-work comparison (extension): CPU vs GPU vs NMP vs MicroRec.

Regenerates the comparative claims of sections 1 and 6 as numbers:

* GPUs only beat the CPU baseline at very large batches, and even then
  their batch latency is SLA-hostile (Gupta et al. 2020a);
* near-memory processing accelerates the embedding layer but leaves
  framework overhead and batching in place (Kwon et al. 2019; Ke et al.
  2020);
* MicroRec is both the fastest and the lowest-latency engine.
"""

from __future__ import annotations

from repro.baselines.gpu import GpuCostModel
from repro.baselines.nmp import NmpCostModel
from repro.cpu.costmodel import CpuCostModel
from repro.experiments.common import accelerator, model
from repro.experiments.report import ExperimentResult

BATCHES = (1, 64, 512, 2048, 8192)


def run() -> ExperimentResult:
    m = model("small")
    cpu = CpuCostModel(m)
    gpu = GpuCostModel(m)
    nmp = NmpCostModel(m)
    fpga = accelerator("small", "fixed16").performance()

    rows = []
    for batch in BATCHES:
        rows.append(
            {
                "batch": batch,
                "cpu_ms": cpu.end_to_end_latency_ms(batch),
                "gpu_ms": gpu.end_to_end_latency_ms(batch),
                "nmp_ms": nmp.end_to_end_latency_ms(batch),
                "cpu_items_s": cpu.throughput_items_per_s(batch),
                "gpu_items_s": gpu.throughput_items_per_s(batch),
                "nmp_items_s": nmp.throughput_items_per_s(batch),
            }
        )
    rows.append(
        {
            "batch": "microrec",
            "fpga_latency_ms": fpga.single_item_latency_us / 1e3,
            "fpga_items_s": fpga.throughput_items_per_s,
        }
    )
    return ExperimentResult(
        experiment_id="related_work",
        title="Alternative hardware: CPU vs GPU vs NMP vs MicroRec "
        "(small model)",
        columns=[
            "batch",
            "cpu_ms",
            "gpu_ms",
            "nmp_ms",
            "cpu_items_s",
            "gpu_items_s",
            "nmp_items_s",
            "fpga_latency_ms",
            "fpga_items_s",
        ],
        rows=rows,
        notes=[
            "GPU/NMP are cost models of the cited systems' mechanisms, "
            "not re-measurements",
        ],
    )
