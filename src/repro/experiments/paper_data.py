"""Published numbers from the MicroRec paper (MLSys 2021).

Every table and figure of the evaluation section, transcribed so the
experiment harness can print paper-vs-measured rows and the test suite can
assert the reproduced *shapes* (speedup ranges, round counts, overhead
bounds).  All latencies in milliseconds unless noted.
"""

from __future__ import annotations

CPU_BATCHES = (1, 64, 256, 512, 1024, 2048)

# -- Table 1: model specifications ------------------------------------------
TABLE1 = {
    "small": {"tables": 47, "feat_len": 352, "hidden": (1024, 512, 256),
              "size_gb": 1.3},
    "large": {"tables": 98, "feat_len": 876, "hidden": (1024, 512, 256),
              "size_gb": 15.1},
}

# -- Table 2: end-to-end inference -------------------------------------------
# CPU latency (ms) per batch size; FPGA latency (ms) and throughput.
TABLE2 = {
    "small": {
        "cpu_latency_ms": dict(zip(CPU_BATCHES, (3.34, 5.41, 8.15, 11.15, 17.17, 28.18))),
        "cpu_throughput_gops": dict(zip(CPU_BATCHES, (0.61, 24.04, 63.81, 93.32, 121.16, 147.65))),
        "cpu_throughput_items": dict(zip(CPU_BATCHES, (299.71, 1.18e4, 3.14e4, 4.59e4, 5.96e4, 7.27e4))),
        "fpga_latency_ms": {"fixed16": 1.63e-2, "fixed32": 2.26e-2},
        "fpga_throughput_gops": {"fixed16": 619.50, "fixed32": 367.72},
        "fpga_throughput_items": {"fixed16": 3.05e5, "fixed32": 1.81e5},
        "speedup_b2048": {"fixed16": 4.19, "fixed32": 2.48},
    },
    "large": {
        "cpu_latency_ms": dict(zip(CPU_BATCHES, (7.48, 10.23, 15.62, 21.06, 31.72, 56.98))),
        "cpu_throughput_gops": dict(zip(CPU_BATCHES, (0.42, 19.48, 51.03, 75.66, 100.49, 111.89))),
        "cpu_throughput_items": dict(zip(CPU_BATCHES, (133.68, 6.26e3, 1.64e4, 2.43e4, 3.23e4, 3.59e4))),
        "fpga_latency_ms": {"fixed16": 2.26e-2, "fixed32": 3.10e-2},
        "fpga_throughput_gops": {"fixed16": 606.41, "fixed32": 379.45},
        "fpga_throughput_items": {"fixed16": 1.95e5, "fixed32": 1.22e5},
        "speedup_b2048": {"fixed16": 5.41, "fixed32": 3.39},
    },
}
#: Headline claim: 2.5-5.4x end-to-end speedup vs the B=2048 CPU baseline.
TABLE2_SPEEDUP_RANGE = (2.48, 5.41)
#: Headline claim: single-item latency 16.3-31.0 microseconds.
TABLE2_LATENCY_RANGE_US = (16.3, 31.0)

# -- Table 3: Cartesian products benefit/overhead ----------------------------
TABLE3 = {
    "small": {
        "without": {"tables": 47, "tables_in_dram": 39, "rounds": 2,
                    "storage": 1.0, "latency": 1.0},
        "with": {"tables": 42, "tables_in_dram": 34, "rounds": 1,
                 "storage": 1.032, "latency": 0.592},
        "lookup_ns": {"without": 774.0, "with": 458.0},
    },
    "large": {
        "without": {"tables": 98, "tables_in_dram": 82, "rounds": 3,
                    "storage": 1.0, "latency": 1.0},
        "with": {"tables": 84, "tables_in_dram": 68, "rounds": 2,
                 "storage": 1.019, "latency": 0.721},
        "lookup_ns": {"without": 2260.0, "with": 1630.0},
    },
}

# -- Table 4: embedding layer performance ------------------------------------
TABLE4 = {
    "small": {
        "cpu_latency_ms": dict(zip(CPU_BATCHES, (2.59, 3.86, 4.71, 5.96, 8.39, 12.96))),
        "fpga_hbm_ms": 7.74e-4,
        "fpga_hbm_cartesian_ms": 4.58e-4,
        "speedup_hbm_b2048": 8.17,
        "speedup_cartesian_b2048": 13.82,
    },
    "large": {
        "cpu_latency_ms": dict(zip(CPU_BATCHES, (6.25, 8.05, 10.92, 13.67, 18.11, 31.25))),
        "fpga_hbm_ms": 1.38e-3,
        "fpga_hbm_cartesian_ms": 1.03e-3,
        "speedup_hbm_b2048": 11.07,
        "speedup_cartesian_b2048": 14.70,
    },
}
#: Headline claim: 13.8-14.7x embedding-layer speedup at B=2048.
TABLE4_SPEEDUP_RANGE = (13.82, 14.70)

# -- Table 5: Facebook DLRM-RMC2 benchmark ------------------------------------
#: lookup latency (ns) and speedup per (num_tables, embedding dim).
TABLE5 = {
    (8, 4): {"lookup_ns": 334.5, "speedup": 72.4},
    (8, 8): {"lookup_ns": 353.7, "speedup": 68.4},
    (8, 16): {"lookup_ns": 411.6, "speedup": 58.8},
    (8, 32): {"lookup_ns": 486.3, "speedup": 49.7},
    (8, 64): {"lookup_ns": 648.4, "speedup": 37.3},
    (12, 4): {"lookup_ns": 648.5, "speedup": 37.3},
    (12, 8): {"lookup_ns": 707.4, "speedup": 34.2},
    (12, 16): {"lookup_ns": 817.4, "speedup": 29.6},
    (12, 32): {"lookup_ns": 972.7, "speedup": 24.8},
    (12, 64): {"lookup_ns": 1296.9, "speedup": 18.7},
}
TABLE5_SPEEDUP_RANGE = (18.7, 72.4)
TABLE5_LOOKUPS_PER_TABLE = 4

# -- Figure 3: embedding layer share of CPU inference -------------------------
#: Embedding latency / end-to-end latency derived from Tables 2 and 4.
FIGURE3 = {
    "small": {1: 2.59 / 3.34, 64: 3.86 / 5.41},
    "large": {1: 6.25 / 7.48, 64: 8.05 / 10.23},
}

# -- Figure 7: throughput vs rounds of lookups --------------------------------
#: The paper reports the small model tolerates 6 rounds and the large model
#: 4 rounds of lookups at fixed-16 before end-to-end throughput degrades.
FIGURE7_TOLERATED_ROUNDS = {"small": 6, "large": 4}

# -- Table 6: resource utilisation & frequency ---------------------------------
TABLE6 = {
    ("small", "fixed16"): {"freq_mhz": 120, "bram": 1566, "dsp": 4625,
                           "ff": 683641, "lut": 485323, "uram": 642},
    ("small", "fixed32"): {"freq_mhz": 140, "bram": 1657, "dsp": 5193,
                           "ff": 764067, "lut": 568864, "uram": 770},
    ("large", "fixed16"): {"freq_mhz": 120, "bram": 1566, "dsp": 4625,
                           "ff": 691042, "lut": 514517, "uram": 642},
    ("large", "fixed32"): {"freq_mhz": 135, "bram": 1721, "dsp": 5193,
                           "ff": 777527, "lut": 584220, "uram": 770},
}

# -- Appendix: cost estimation -------------------------------------------------
COST = {
    "cpu_server_per_hour_usd": 1.82,
    "fpga_server_per_hour_usd": 1.65,  # AWS U250, closest available model
    "speedup_fixed32": (2.48, 3.39),  # "4-5x" in the appendix text rounds up
}

#: Embedding-lookup speedup attributed to HBM alone (paper contribution 1).
HBM_SPEEDUP_RANGE = (8.2, 11.1)
#: Additional factor attributed to Cartesian products (contribution 2).
CARTESIAN_EXTRA_SPEEDUP_RANGE = (1.39, 1.69)
CARTESIAN_STORAGE_OVERHEAD_RANGE = (0.019, 0.032)
