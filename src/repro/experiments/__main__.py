from repro.experiments.harness import main

main()
