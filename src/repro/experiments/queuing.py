"""Queuing ablation: idealised vs simulated DRAM channel behaviour.

EXPERIMENTS.md notes one systematic deviation from the paper: our
analytical lookup latencies sit below the measured hardware, most visibly
on the large model (ours 1065/868 ns vs the paper's 2260/1630 ns).  This
experiment quantifies how much of that gap controller effects explain: it
replays each production placement's per-inference access pattern through
the open-page :class:`~repro.memory.dramsim.DramChannelSim` (row conflicts,
command-queue overhead, refresh) and compares per-inference lookup latency
against the idealised model, with and without Cartesian products.

The qualitative claim being guarded: the *Cartesian benefit survives
queuing* — merging reduces simulated latency by a similar factor to the
idealised one, because the benefit comes from access-count reduction, not
from any idealisation.
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import Plan
from repro.experiments.common import plan
from repro.experiments.report import ExperimentResult
from repro.memory.dramsim import DramChannelSim, DramTimingParams

INFERENCES = 400


def simulated_lookup_ns(
    p: Plan, rng: np.random.Generator, inferences: int = INFERENCES
) -> float:
    """Per-inference lookup latency with the queued channel model.

    Every DRAM bank replays ``inferences`` rounds of one random-row access
    per resident group; the per-inference latency is the slowest channel's
    mean service time (banks run concurrently, as in the ideal model).
    """
    placement = p.placement
    per_bank_groups: dict[int, list] = {}
    for group, bank_id in placement.bank_of.items():
        if placement.memory.bank(bank_id).kind.is_dram:
            per_bank_groups.setdefault(bank_id, []).append(group)

    worst = 0.0
    for groups in per_bank_groups.values():
        sim = DramChannelSim(DramTimingParams())
        specs = [placement.group_spec(g) for g in groups]
        # Address-space offsets so co-resident tables hit different rows.
        offsets = np.cumsum([0, *(s.nbytes for s in specs[:-1])])
        for _ in range(inferences):
            for spec, offset in zip(specs, offsets):
                for _ in range(spec.lookups_per_inference):
                    row = int(rng.integers(0, spec.rows))
                    sim.access(int(offset) + row * spec.vector_bytes,
                               spec.vector_bytes)
        worst = max(worst, sim.stats.total_ns / inferences)
    return worst


def run() -> ExperimentResult:
    rng = np.random.default_rng(2021)
    rows = []
    for name in ("small", "large"):
        for cartesian in (False, True):
            p = plan(name, cartesian)
            ideal = p.lookup_latency_ns
            queued = simulated_lookup_ns(p, rng)
            rows.append(
                {
                    "model": name,
                    "cartesian": "with" if cartesian else "without",
                    "ideal_ns": ideal,
                    "queued_ns": queued,
                    "queuing_penalty": queued / ideal,
                }
            )
    # Cartesian benefit under each model.
    for name in ("small", "large"):
        sub = [r for r in rows if r["model"] == name]
        without = next(r for r in sub if r["cartesian"] == "without")
        with_ = next(r for r in sub if r["cartesian"] == "with")
        with_["cartesian_benefit_ideal"] = with_["ideal_ns"] / without["ideal_ns"]
        with_["cartesian_benefit_queued"] = (
            with_["queued_ns"] / without["queued_ns"]
        )
    return ExperimentResult(
        experiment_id="queuing",
        title="DRAM queuing ablation: idealised vs simulated channels",
        columns=[
            "model",
            "cartesian",
            "ideal_ns",
            "queued_ns",
            "queuing_penalty",
            "cartesian_benefit_ideal",
            "cartesian_benefit_queued",
        ],
        rows=rows,
        notes=[
            "queued = open-page controller sim (row conflicts, queue "
            "overhead, refresh); benefit ratios must agree",
        ],
    )
