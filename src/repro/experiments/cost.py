"""Appendix: cost estimation, CPU vs FPGA serving on AWS.

The paper compares rental prices ($1.82/h for the CPU server, $1.65/h for
the closest FPGA instance) and argues that with the measured speedups the
FPGA engine is cheaper per inference.  We regenerate dollars per million
inferences for both engines and both precisions.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import accelerator, cpu_model
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    cpu_price = paper_data.COST["cpu_server_per_hour_usd"]
    fpga_price = paper_data.COST["fpga_server_per_hour_usd"]
    rows = []
    for name in ("small", "large"):
        cm = cpu_model(name)
        cpu_rate = cm.throughput_items_per_s(2048)
        cpu_cost = cpu_price / 3600.0 / cpu_rate * 1e6
        rows.append(
            {
                "model": name,
                "engine": "CPU B=2048",
                "items_per_s": cpu_rate,
                "usd_per_hour": cpu_price,
                "usd_per_1m_inferences": cpu_cost,
                "cost_ratio_vs_cpu": 1.0,
            }
        )
        for precision in ("fixed16", "fixed32"):
            rate = accelerator(name, precision).performance().throughput_items_per_s
            cost = fpga_price / 3600.0 / rate * 1e6
            rows.append(
                {
                    "model": name,
                    "engine": f"FPGA {precision}",
                    "items_per_s": rate,
                    "usd_per_hour": fpga_price,
                    "usd_per_1m_inferences": cost,
                    "cost_ratio_vs_cpu": cost / cpu_cost,
                }
            )
    return ExperimentResult(
        experiment_id="cost",
        title="Serving cost: CPU vs FPGA on AWS",
        columns=[
            "model",
            "engine",
            "items_per_s",
            "usd_per_hour",
            "usd_per_1m_inferences",
            "cost_ratio_vs_cpu",
        ],
        rows=rows,
        notes=["paper: FPGA beneficial long-term given 4-5x speedup at fixed32"],
    )
