"""Trace-scale experiment: a ten-million-query trace, end to end in seconds.

The stress test of the vectorised simulation hot paths (extension): one
diurnal :class:`~repro.serving.arrivals.RateTrace` is realised as ~10
million arrival timestamps and replayed through every serving layer —
the pipelined FPGA queueing model, the batched CPU queueing model, and a
routed three-tier cluster — with the wall clock of each phase reported
next to its latency statistics.  Before the stage-major / batch-major
rewrites this replay took minutes of interpreter time; the vectorised
paths finish the whole table in seconds, which is what makes the
web-scale sweeps (section 5's million-QPS operating points) tractable on
a laptop.

Latency statistics are deterministic under the fixed seed; the ``wall_s``
and ``million_per_s`` columns are measured and vary run to run (the test
suite asserts only a generous end-to-end ceiling — the precise runtime
gate lives in the CI perf job's wall-clock budgets).
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import session
from repro.experiments.report import ExperimentResult
from repro.serving.arrivals import diurnal_trace, trace_arrivals
from repro.serving.sla import DEFAULT_SLA_MS

#: Expected arrival count of the realised trace (Poisson, so the actual
#: draw lands within a fraction of a percent).
TARGET_QUERIES = 10_000_000
#: Mean offered load as a fraction of each engine's sustained capacity;
#: with the diurnal peak at 1.6x the mean this keeps the peak at 0.8x
#: capacity — loaded enough to queue, stable enough to finish.
MEAN_UTILISATION = 0.5
#: Tiers of the routed-cluster phase (one replica each).
CLUSTER_TIERS = ("fpga", "gpu", "cpu")
ROUTER = "sla-aware"
SEED = 0


def _row(
    stage: str,
    queries: int,
    wall_s: float,
    result: object | None = None,
) -> dict[str, object]:
    row: dict[str, object] = {
        "stage": stage,
        "queries": queries,
        "wall_s": wall_s,
        "million_per_s": queries / wall_s / 1e6 if wall_s > 0 else None,
        "p50_ms": None,
        "p99_ms": None,
        "sla_attainment": None,
    }
    if result is not None:
        row["p50_ms"] = result.p50_ms
        row["p99_ms"] = result.p99_ms
        row["sla_attainment"] = result.sla_attainment(DEFAULT_SLA_MS)
    return row


def run() -> ExperimentResult:
    fpga = session("small", "fpga")
    cpu = session("small", "cpu")
    rate = MEAN_UTILISATION * fpga.perf().throughput_items_per_s
    duration_s = TARGET_QUERIES / rate

    rows: list[dict[str, object]] = []

    started = time.perf_counter()  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    trace = diurnal_trace(rate, duration_s)
    arrivals = trace_arrivals(np.random.default_rng(SEED), trace)
    n = int(arrivals.size)
    elapsed = time.perf_counter() - started  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    rows.append(_row("generate (diurnal thinning)", n, elapsed))

    started = time.perf_counter()  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    served = fpga.serve(arrivals)
    elapsed = time.perf_counter() - started  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    rows.append(
        _row("pipelined serve (fpga)", n, elapsed, served)
    )

    # The batched CPU engine sustains a fraction of the FPGA's rate;
    # stretching the timestamps rescales the same diurnal stream to the
    # same relative load without paying for a second 10M-sample draw.
    started = time.perf_counter()  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    cpu_rate = MEAN_UTILISATION * cpu.perf().throughput_items_per_s
    served = cpu.serve(arrivals * (rate / cpu_rate))
    elapsed = time.perf_counter() - started  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    rows.append(
        _row("batched serve (cpu)", n, elapsed, served)
    )

    started = time.perf_counter()  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    from repro.cluster import ReplicaSpec, deploy_cluster

    cluster = deploy_cluster(
        [ReplicaSpec(model="small", backend=b) for b in CLUSTER_TIERS],
        router=ROUTER,
        slo_ms=DEFAULT_SLA_MS,
        seed=SEED,
    )
    cluster_rate = (
        MEAN_UTILISATION * cluster.perf().throughput_items_per_s
    )
    served = cluster.serve(arrivals * (rate / cluster_rate))
    elapsed = time.perf_counter() - started  # repro-lint: noqa[RPR002] -- this experiment measures real wall-clock throughput; elapsed seconds are its payload
    rows.append(
        _row(
            f"routed cluster ({'+'.join(CLUSTER_TIERS)}, {ROUTER})",
            n,
            elapsed,
            served,
        )
    )

    return ExperimentResult(
        experiment_id="trace_scale",
        title=(
            f"~{TARGET_QUERIES / 1e6:.0f}M-query diurnal trace replayed "
            f"through every serving layer (mean load "
            f"{MEAN_UTILISATION:.0%} of capacity, p99 SLO "
            f"{DEFAULT_SLA_MS:.0f} ms)"
        ),
        columns=[
            "stage",
            "queries",
            "wall_s",
            "million_per_s",
            "p50_ms",
            "p99_ms",
            "sla_attainment",
        ],
        rows=rows,
        notes=[
            "one fixed-seed arrival stream, rescaled in time so every "
            "engine sees the same relative load",
            "wall_s / million_per_s are measured on this machine; "
            "latency columns are deterministic under the seed",
            "pre-vectorisation this table took minutes of interpreter "
            "time — the hot paths are the routed virtual queues, the "
            "stage-major pipeline sweeps, and the batch-major CPU loop",
        ],
    )
