"""Latency-under-load experiment: the serving lab across backends.

The trace-driven counterpart of :mod:`repro.experiments.serving_sla`
(extension): every modelled backend — MicroRec's pipeline, the batched
CPU and GPU stacks, the near-memory baseline — is driven through the
serving lab (:mod:`repro.serving.lab`) under steady Poisson, diurnal,
and MMPP-style bursty arrivals, and the 30 ms p99 SLO is then priced
into fleets two ways: throughput-headroom sizing versus SLA-aware sizing
(:func:`repro.deploy.capacity.plan_fleet_sla`).  The paper's claim in
one table: batched engines lose SLA capacity (and buy extra nodes) as
the arrival process roughens, while the pipelined engines barely move.
"""

from __future__ import annotations

from repro.deploy.capacity import plan_fleet_sla
from repro.experiments.common import session
from repro.experiments.report import ExperimentResult
from repro.serving.lab import load_sweep
from repro.serving.sla import DEFAULT_SLA_MS

#: ``fpga-compressed`` shares the fpga timing model, so the lab sweeps
#: the four distinct serving architectures.
BACKENDS = ("fpga", "cpu", "gpu", "nmp")
PROCESSES = ("poisson", "diurnal", "bursty")
UTILISATIONS = (0.25, 0.5, 0.8, 1.05)
TARGET_QPS = 1_000_000.0
DURATION_S = 0.1


def run() -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for backend in BACKENDS:
        sess = session("small", backend)
        for process in PROCESSES:
            curve = load_sweep(
                sess,
                process=process,
                utilisations=UTILISATIONS,
                duration_s=DURATION_S,
                slo_ms=DEFAULT_SLA_MS,
                seed=0,
            )
            for point in curve.points:
                rows.append(
                    {
                        "engine": backend,
                        "process": process,
                        "rate_per_s": point.rate_per_s,
                        "utilisation": point.utilisation,
                        "p50_ms": point.p50_ms,
                        "p99_ms": point.p99_ms,
                        "sla_attainment": point.sla_attainment,
                    }
                )
            rows.append(
                {
                    "engine": backend,
                    "process": process,
                    "sla_capacity_per_s": curve.sla_capacity_per_s,
                    "knee_rate_per_s": curve.knee_rate_per_s,
                }
            )
        fleet = sess.fleet(TARGET_QPS)
        try:
            sla_fleet = plan_fleet_sla(
                TARGET_QPS,
                sess,
                slo_ms=DEFAULT_SLA_MS,
                duration_s=DURATION_S,
                seed=0,
            )
            sla_row = {
                "sla_nodes": sla_fleet.nodes,
                "slo_bound": sla_fleet.slo_bound,
                "usd_per_hour": sla_fleet.usd_per_hour,
            }
        except ValueError:
            # SLO below this engine's latency floor: unattainable at any
            # fleet size — a lab result in its own right, not a crash.
            sla_row = {"sla_nodes": None, "slo_bound": None,
                       "usd_per_hour": None}
        rows.append(
            {
                "engine": backend,
                "process": "fleet@1Mqps",
                "throughput_nodes": fleet.nodes,
                **sla_row,
            }
        )
    return ExperimentResult(
        experiment_id="latency_under_load",
        title=f"Serving lab: tail latency under load (p99 SLO = "
        f"{DEFAULT_SLA_MS:.0f} ms, small model)",
        columns=[
            "engine",
            "process",
            "rate_per_s",
            "utilisation",
            "p50_ms",
            "p99_ms",
            "sla_attainment",
            "sla_capacity_per_s",
            "knee_rate_per_s",
            "throughput_nodes",
            "sla_nodes",
            "slo_bound",
            "usd_per_hour",
        ],
        rows=rows,
        notes=[
            "utilisation = offered rate / per-node sustained throughput; "
            "SLA-aware fleets simulate per-node load (plan_fleet_sla)",
            "fpga-compressed shares the fpga timing model and is omitted",
        ],
    )
