"""Packaging for the MicroRec (MLSys 2021) reproduction.

Kept as a plain setup.py (no wheel/network required) so offline editable
installs — ``pip install -e .`` — work in air-gapped environments.
"""

import os

from setuptools import find_packages, setup


def _long_description() -> str:
    if os.path.exists("README.md"):
        with open("README.md", encoding="utf-8") as fh:
            return fh.read()
    return ""


def _version() -> str:
    """The package version, from its single source in the package.

    Exec'd rather than imported so ``setup.py`` works before the package
    (and its ``numpy`` dependency) is importable.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    namespace: dict[str, str] = {}
    with open(
        os.path.join(here, "src", "repro", "_version.py"), encoding="utf-8"
    ) as fh:
        exec(fh.read(), namespace)
    return namespace["__version__"]


setup(
    name="microrec-repro",
    version=_version(),
    description=(
        "Reproduction of MicroRec (MLSys 2021): efficient recommendation "
        "inference via Cartesian-product embedding-table merging, hybrid "
        "HBM/DDR/on-chip placement planning, and analytical FPGA/CPU "
        "serving simulators behind a unified runtime API"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
